#include "serve/router.h"

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <thread>
#include <vector>

#include "datagen/heterogeneous.h"
#include "model/selection.h"
#include "util/logging.h"

namespace crowdselect::serve {
namespace {

HeterogeneousConfig SmallWorkload() {
  HeterogeneousConfig config;
  config.num_types = 3;
  config.num_workers = 30;
  config.num_tasks = 150;
  config.vocab_per_type = 25;
  config.shared_vocab = 8;
  config.answers_per_task = 4;
  config.seed = 11;
  return config;
}

TdpmOptions MemberOptions(uint64_t seed) {
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 15;
  options.seed = seed;
  return options;
}

/// Router with one TDPM member per ground-truth type, trained on the
/// heterogeneous workload.
TaskTypeRouter TrainedRouter(const HeterogeneousDataset& data,
                             RouteMode mode = RouteMode::kSimilarity) {
  RouterOptions options;
  options.mode = mode;
  options.seed = 19;
  TaskTypeRouter router(options);
  for (size_t m = 0; m < data.config.num_types; ++m) {
    router.AddModel(std::make_unique<TdpmSelector>(MemberOptions(19 + m)));
  }
  CS_CHECK_OK(router.Train(data.dataset.db));
  return router;
}

TEST(TaskTypeRouterTest, UntrainedAndEmptyFailCleanly) {
  TaskTypeRouter empty;
  CrowdDatabase db;
  EXPECT_TRUE(empty.Train(db).IsFailedPrecondition());

  TaskTypeRouter router;
  router.AddModel(std::make_unique<TdpmSelector>(MemberOptions(1)));
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(router.SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
}

// Golden dispatch: on a workload with disjoint per-type vocabularies,
// routing must be (a) deterministic, (b) pure — tasks of one ground-
// truth type land on one member — and (c) discriminating — different
// types land on different members.
TEST(TaskTypeRouterTest, GoldenDispatchOnHeterogeneousWorkload) {
  auto data = GenerateHeterogeneousDataset(SmallWorkload());
  ASSERT_TRUE(data.ok());
  TaskTypeRouter router = TrainedRouter(*data);

  const CrowdDatabase& db = data->dataset.db;
  // type -> member histogram over the training tasks.
  std::map<uint32_t, std::map<size_t, size_t>> histogram;
  for (size_t j = 0; j < db.tasks().size(); ++j) {
    const RouteDecision first = router.Route(db.tasks()[j].bag);
    const RouteDecision second = router.Route(db.tasks()[j].bag);
    EXPECT_EQ(first.member, second.member) << "dispatch must be deterministic";
    EXPECT_FALSE(first.fallback);
    EXPECT_GT(first.similarity, 0.0);
    ++histogram[data->task_type[j]][first.member];
  }

  std::set<size_t> majority_members;
  size_t pure = 0, total = 0;
  for (const auto& [type, members] : histogram) {
    size_t best_member = 0, best_count = 0, type_total = 0;
    for (const auto& [member, count] : members) {
      type_total += count;
      if (count > best_count) {
        best_count = count;
        best_member = member;
      }
    }
    pure += best_count;
    total += type_total;
    majority_members.insert(best_member);
  }
  EXPECT_GT(static_cast<double>(pure) / total, 0.9)
      << "dispatch should be pure per ground-truth type";
  EXPECT_EQ(majority_members.size(), histogram.size())
      << "each type should own a distinct member";
}

TEST(TaskTypeRouterTest, NoVocabularyOverlapFallsBack) {
  auto data = GenerateHeterogeneousDataset(SmallWorkload());
  ASSERT_TRUE(data.ok());
  TaskTypeRouter router = TrainedRouter(*data);
  router.set_fixed_member(1);

  BagOfWords unknown;  // Term ids far outside the trained vocabulary.
  unknown.Add(1000000, 3);
  const RouteDecision decision = router.Route(unknown);
  EXPECT_TRUE(decision.fallback);
  EXPECT_EQ(decision.member, 1u);
  // Uniform ensemble weights on fallback.
  for (double w : decision.weights) {
    EXPECT_DOUBLE_EQ(w, 1.0 / router.num_members());
  }
}

TEST(TaskTypeRouterTest, ExplainCarriesRouteDecision) {
  auto data = GenerateHeterogeneousDataset(SmallWorkload());
  ASSERT_TRUE(data.ok());
  TaskTypeRouter router = TrainedRouter(*data);

  const CrowdDatabase& db = data->dataset.db;
  std::vector<WorkerId> candidates;
  for (WorkerId w = 0; w < db.NumWorkers(); ++w) candidates.push_back(w);

  QueryStats stats;
  auto top =
      router.SelectTopKExplained(db.tasks()[0].bag, 3, candidates, &stats);
  ASSERT_TRUE(top.ok());
  EXPECT_TRUE(stats.route.routed);
  EXPECT_EQ(stats.route.mode, "similarity");
  EXPECT_FALSE(stats.route.chosen_model.empty());
  EXPECT_EQ(stats.serving_model, stats.route.chosen_model);
  EXPECT_GT(stats.route.similarity, 0.0);
  EXPECT_GE(stats.route.margin, 0.0);
  // Similarity mode reports no ensemble weights.
  EXPECT_TRUE(stats.route.ensemble_weights.empty());

  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"route\""), std::string::npos);
  EXPECT_NE(json.find("\"chosen_model\""), std::string::npos);
}

TEST(TaskTypeRouterTest, EnsembleBlendsAllMembers) {
  auto data = GenerateHeterogeneousDataset(SmallWorkload());
  ASSERT_TRUE(data.ok());
  TaskTypeRouter router = TrainedRouter(*data, RouteMode::kEnsemble);
  EXPECT_EQ(router.ModelId(), "ensemble");
  EXPECT_EQ(router.Name(), "Ensemble");

  const CrowdDatabase& db = data->dataset.db;
  std::vector<WorkerId> candidates;
  for (WorkerId w = 0; w < db.NumWorkers(); ++w) candidates.push_back(w);

  QueryStats stats;
  auto top =
      router.SelectTopKExplained(db.tasks()[0].bag, 5, candidates, &stats);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 5u);
  for (size_t i = 1; i < top->size(); ++i) {
    EXPECT_GE((*top)[i - 1].score, (*top)[i].score);
  }
  EXPECT_EQ(stats.serving_model, "ensemble");
  EXPECT_EQ(stats.route.mode, "ensemble");
  ASSERT_EQ(stats.route.ensemble_weights.size(), router.num_members());
  double weight_sum = 0.0;
  for (const auto& [label, weight] : stats.route.ensemble_weights) {
    EXPECT_FALSE(label.empty());
    EXPECT_GE(weight, 0.0);
    weight_sum += weight;
  }
  EXPECT_NEAR(weight_sum, 1.0, 1e-9);
}

TEST(TaskTypeRouterTest, MemberLabelsDefaultToModelIdAndIndex) {
  TaskTypeRouter router;
  router.AddModel(std::make_unique<TdpmSelector>(MemberOptions(1)));
  router.AddModel(std::make_unique<TdpmSelector>(MemberOptions(2)), "custom");
  BagOfWords bag;
  bag.Add(0);
  // Labels surface through Route (single member short-circuits; use the
  // fixed-mode decision for each).
  router.set_fixed_member(0);
  EXPECT_EQ(router.Route(bag).model, "tdpm:0");
  router.set_fixed_member(1);
  EXPECT_EQ(router.Route(bag).model, "custom");
}

// Concurrent selects against live ObserveResolvedTask republishes; run
// under TSan this guards the copy-on-write snapshot contract end to end
// (router -> member -> engine).
TEST(TaskTypeRouterTest, ConcurrentSelectDuringObserveIsSafe) {
  auto data = GenerateHeterogeneousDataset(SmallWorkload());
  ASSERT_TRUE(data.ok());
  TaskTypeRouter router = TrainedRouter(*data);

  const CrowdDatabase& db = data->dataset.db;
  std::vector<WorkerId> candidates;
  for (WorkerId w = 0; w < db.NumWorkers(); ++w) candidates.push_back(w);

  constexpr int kReaders = 4;
  constexpr int kQueriesPerReader = 60;
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      for (int q = 0; q < kQueriesPerReader; ++q) {
        const TaskRecord& task =
            db.tasks()[(r * kQueriesPerReader + q) % db.tasks().size()];
        QueryStats stats;
        auto top = router.SelectTopKExplained(task.bag, 3, candidates, &stats);
        CS_CHECK_OK(top.status());
        CS_CHECK(!top->empty());
      }
    });
  }
  // Writer: live updates forcing snapshot republishes while reads run.
  for (int i = 0; i < 40; ++i) {
    const TaskRecord& task = db.tasks()[i % db.tasks().size()];
    CS_CHECK_OK(router.ObserveResolvedTask(
        task.bag, {{static_cast<WorkerId>(i % db.NumWorkers()), 0.8}}));
  }
  for (std::thread& t : readers) t.join();
}

}  // namespace
}  // namespace crowdselect::serve
