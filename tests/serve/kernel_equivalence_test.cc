// Engine-level determinism tests for the blocked ScoreKernel scan:
// kernel choice (scalar vs dispatched SIMD), scan geometry (block size,
// shard count, inline vs parallel), candidate shape (dense vs sparse),
// and quantization mode must never change a ranking. The scalar kernel
// on a sequential scan is the specification; everything else must match
// it bitwise (fp64) or recover it exactly after rescore (int8).
#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "serve/selection_engine.h"
#include "serve/skill_matrix.h"
#include "util/cpuid.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdselect::serve {
namespace {

std::shared_ptr<const SkillMatrixSnapshot> RandomSnapshot(size_t n, size_t k,
                                                          uint64_t seed) {
  Rng rng(seed);
  Matrix skills(n, k);
  for (size_t w = 0; w < n; ++w) {
    for (size_t d = 0; d < k; ++d) skills(w, d) = rng.Normal();
  }
  return SkillMatrixSnapshot::FromMatrix(std::move(skills));
}

Vector RandomCategory(size_t k, uint64_t seed) {
  Rng rng(seed);
  Vector c(k);
  for (size_t d = 0; d < k; ++d) c[d] = rng.Normal();
  return c;
}

std::vector<WorkerId> DenseRange(size_t n) {
  std::vector<WorkerId> ids(n);
  for (size_t w = 0; w < n; ++w) ids[w] = static_cast<WorkerId>(w);
  return ids;
}

void ExpectSameRanking(const std::vector<RankedWorker>& a,
                       const std::vector<RankedWorker>& b,
                       const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].worker, b[i].worker) << what << " rank " << i;
    // Bitwise, not epsilon: the determinism contract.
    EXPECT_EQ(std::memcmp(&a[i].score, &b[i].score, sizeof(double)), 0)
        << what << " rank " << i << ": " << a[i].score << " vs "
        << b[i].score;
  }
}

// Forced-scalar vs whatever runtime dispatch picked, across pool sizes
// that land on / straddle / fill panel boundaries, with a block size
// that splits panels across parallel chunks.
TEST(KernelEquivalenceTest, DispatchedKernelMatchesScalarBitwise) {
  for (size_t pool : {size_t{1}, size_t{3}, size_t{8}, size_t{9}, size_t{17},
                      size_t{64}, size_t{257}, size_t{1000}, size_t{5000}}) {
    const size_t dims = 1 + pool % 7;
    auto snapshot = RandomSnapshot(pool, dims, 40 + pool);
    const Vector category = RandomCategory(dims, 90 + pool);
    const std::vector<WorkerId> candidates = DenseRange(pool);

    ServeOptions scalar_options;
    scalar_options.force_scalar_kernel = true;
    scalar_options.min_parallel_candidates = 1u << 30;  // always inline
    SelectionEngine scalar_engine(scalar_options);
    scalar_engine.PublishSnapshot(snapshot);

    ServeOptions simd_options;
    simd_options.num_threads = 4;
    simd_options.min_parallel_candidates = 16;  // parallel almost always
    simd_options.scan_block = 24;               // 3 panels per chunk
    SelectionEngine simd_engine(simd_options);
    simd_engine.PublishSnapshot(snapshot);

    for (size_t k : {size_t{1}, size_t{6}, size_t{16}}) {
      auto reference = scalar_engine.RankByCategory(category, k, candidates);
      auto dispatched = simd_engine.RankByCategory(category, k, candidates);
      ASSERT_TRUE(reference.ok() && dispatched.ok());
      ExpectSameRanking(*reference, *dispatched, "pool scan");
    }
  }
}

// Sparse subsets leave the panel path but must score through the exact
// same arithmetic chain, so per-worker scores agree bitwise with a
// dense scan that happened to rank the same workers.
TEST(KernelEquivalenceTest, SparseSubsetScoresMatchDenseBitwise) {
  constexpr size_t kPool = 700;
  constexpr size_t kDims = 9;
  auto snapshot = RandomSnapshot(kPool, kDims, 5);
  const Vector category = RandomCategory(kDims, 6);
  SelectionEngine engine;
  engine.PublishSnapshot(snapshot);

  // Full dense ranking: every worker with its panel-scan score.
  auto dense = engine.RankByCategory(category, kPool, DenseRange(kPool));
  ASSERT_TRUE(dense.ok());
  std::vector<double> score_of(kPool);
  for (const RankedWorker& rw : *dense) score_of[rw.worker] = rw.score;

  // Every 3rd worker: not contiguous, so this exercises the gather path.
  std::vector<WorkerId> sparse;
  for (size_t w = 0; w < kPool; w += 3) sparse.push_back(WorkerId(w));
  auto ranked = engine.RankByCategory(category, sparse.size(), sparse);
  ASSERT_TRUE(ranked.ok());
  ASSERT_EQ(ranked->size(), sparse.size());
  for (const RankedWorker& rw : *ranked) {
    EXPECT_EQ(std::memcmp(&rw.score, &score_of[rw.worker], sizeof(double)), 0)
        << "worker " << rw.worker;
  }
}

// int8 phase-1 + full-precision rescore at the default oversample must
// return the exact fp64 top-k — workers AND scores (the rescore reruns
// the full-precision chain, so scores match bitwise, not approximately).
TEST(KernelEquivalenceTest, Int8RescoreRecoversExactTopK) {
  constexpr size_t kPool = 20000;
  constexpr size_t kDims = 8;
  constexpr size_t kTopK = 16;
  auto snapshot = RandomSnapshot(kPool, kDims, 71);
  const Vector category = RandomCategory(kDims, 72);
  const std::vector<WorkerId> candidates = DenseRange(kPool);

  ServeOptions fp_options;
  fp_options.num_threads = 2;
  fp_options.min_parallel_candidates = 4096;
  SelectionEngine fp_engine(fp_options);
  fp_engine.PublishSnapshot(snapshot);

  ServeOptions int8_options = fp_options;
  int8_options.quant = ScanQuant::kInt8;
  int8_options.oversample = 4;
  SelectionEngine int8_engine(int8_options);
  int8_engine.PublishSnapshot(snapshot);

  auto exact = fp_engine.RankByCategory(category, kTopK, candidates);
  auto quantized = int8_engine.RankByCategory(category, kTopK, candidates);
  ASSERT_TRUE(exact.ok() && quantized.ok());
  ExpectSameRanking(*exact, *quantized, "int8 rescore");
}

// Tie-heavy pool: scores collide massively (only 4 distinct values), so
// any nondeterminism in merge order, chunk boundaries, kernel choice, or
// quantization shows up as a reordered ranking. The contract: equal
// scores break by ascending worker id, always.
TEST(KernelEquivalenceTest, TieBreakingIsAscendingIdEverywhere) {
  constexpr size_t kPool = 512;
  constexpr size_t kTopK = 16;
  Matrix skills(kPool, 1);
  for (size_t w = 0; w < kPool; ++w) {
    skills(w, 0) = static_cast<double>(w % 4);
  }
  auto snapshot = SkillMatrixSnapshot::FromMatrix(std::move(skills));
  Vector category(1, 1.0);
  const std::vector<WorkerId> candidates = DenseRange(kPool);

  for (bool force_scalar : {false, true}) {
    for (ScanQuant quant : {ScanQuant::kFp64, ScanQuant::kInt8}) {
      for (size_t scan_block : {size_t{5}, size_t{10}, size_t{64}}) {
        for (size_t threads : {size_t{1}, size_t{4}}) {
          ServeOptions options;
          options.force_scalar_kernel = force_scalar;
          options.quant = quant;
          options.num_threads = threads;
          options.min_parallel_candidates = 16;
          options.scan_block = scan_block;
          SelectionEngine engine(options);
          engine.PublishSnapshot(snapshot);
          auto ranked = engine.RankByCategory(category, kTopK, candidates);
          ASSERT_TRUE(ranked.ok());
          ASSERT_EQ(ranked->size(), kTopK);
          for (size_t i = 0; i < kTopK; ++i) {
            // Workers scoring 3 are ids 3, 7, 11, ... in id order.
            EXPECT_EQ((*ranked)[i].worker, WorkerId(3 + 4 * i))
                << "scalar=" << force_scalar << " int8="
                << (quant == ScanQuant::kInt8) << " block=" << scan_block
                << " threads=" << threads << " rank " << i;
            EXPECT_DOUBLE_EQ((*ranked)[i].score, 3.0);
          }
        }
      }
    }
  }
}

// Live fold-in path: WithUpdatedRows must leave the panels in exactly
// the state a from-scratch snapshot build would produce, and queries on
// the updated snapshot must see the new scores through every path.
TEST(KernelEquivalenceTest, LiveUpdateReencodesPanelsExactly) {
  constexpr size_t kPool = 41;  // straddles a panel boundary (6 panels)
  constexpr size_t kDims = 4;
  auto snapshot = RandomSnapshot(kPool, kDims, 13);

  Rng rng(14);
  std::vector<std::pair<WorkerId, Vector>> updates;
  for (WorkerId w : {WorkerId(0), WorkerId(7), WorkerId(8), WorkerId(40)}) {
    Vector row(kDims);
    for (size_t d = 0; d < kDims; ++d) row[d] = rng.Normal();
    updates.emplace_back(w, row);
  }
  auto updated = snapshot->WithUpdatedRows(updates);

  // The re-encoded panels must be byte-identical to a fresh build of
  // the updated matrix (fp lanes, int8 codes, and scales).
  Matrix rebuilt(kPool, kDims);
  for (size_t w = 0; w < kPool; ++w) {
    const double* row = updated->RowPtr(WorkerId(w));
    for (size_t d = 0; d < kDims; ++d) rebuilt(w, d) = row[d];
  }
  const kernels::BlockedPanels fresh = kernels::BlockedPanels::Build(rebuilt);
  const kernels::BlockedPanels& live = updated->panels();
  ASSERT_EQ(live.num_panels(), fresh.num_panels());
  const size_t panel_doubles = live.dims() * kernels::kPanelWidth;
  for (size_t p = 0; p < live.num_panels(); ++p) {
    EXPECT_EQ(std::memcmp(live.PanelFp(p), fresh.PanelFp(p),
                          panel_doubles * sizeof(double)),
              0)
        << "fp panel " << p;
    EXPECT_EQ(
        std::memcmp(live.PanelQ8(p), fresh.PanelQ8(p), panel_doubles), 0)
        << "q8 panel " << p;
    EXPECT_EQ(std::memcmp(live.PanelScales(p), fresh.PanelScales(p),
                          kernels::kPanelWidth * sizeof(double)),
              0)
        << "scales panel " << p;
  }

  // And the serving view agrees: panel scan over the updated snapshot
  // ranks with the new rows.
  const Vector category = RandomCategory(kDims, 15);
  SelectionEngine engine;
  engine.PublishSnapshot(updated);
  auto ranked =
      engine.RankByCategory(category, kPool, DenseRange(kPool));
  ASSERT_TRUE(ranked.ok());
  for (const RankedWorker& rw : *ranked) {
    const double expected = live.LaneScore(rw.worker, category.raw());
    EXPECT_EQ(std::memcmp(&rw.score, &expected, sizeof(double)), 0)
        << "worker " << rw.worker;
  }
}

// The engine surfaces which kernel and quant mode served the query.
TEST(KernelEquivalenceTest, EngineReportsDispatchedKernel) {
  SelectionEngine dispatched;
  EXPECT_TRUE(std::strcmp(dispatched.kernel().id(), "scalar") == 0 ||
              std::strcmp(dispatched.kernel().id(), "avx2") == 0 ||
              std::strcmp(dispatched.kernel().id(), "neon") == 0);

  ServeOptions options;
  options.force_scalar_kernel = true;
  SelectionEngine forced(options);
  EXPECT_STREQ(forced.kernel().id(), "scalar");
}

}  // namespace
}  // namespace crowdselect::serve
