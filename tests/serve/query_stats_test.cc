#include "serve/query_stats.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "model/selection.h"
#include "serve/selection_engine.h"
#include "serve/skill_matrix.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdselect::serve {
namespace {

std::shared_ptr<const SkillMatrixSnapshot> RandomSnapshot(size_t n, size_t k,
                                                          uint64_t seed) {
  Rng rng(seed);
  Matrix skills(n, k);
  for (size_t w = 0; w < n; ++w) {
    for (size_t d = 0; d < k; ++d) skills(w, d) = rng.Normal();
  }
  return SkillMatrixSnapshot::FromMatrix(std::move(skills));
}

TaskFolder SyntheticFolder(size_t k, size_t vocab) {
  TdpmOptions options;
  options.num_categories = k;
  auto folder = TaskFolder::Create(TdpmModelParams::Init(k, vocab), options);
  CS_CHECK(folder.ok());
  return std::move(*folder);
}

std::vector<WorkerId> AllWorkers(size_t n) {
  std::vector<WorkerId> ids(n);
  for (size_t w = 0; w < n; ++w) ids[w] = static_cast<WorkerId>(w);
  return ids;
}

std::unique_ptr<SelectionEngine> MakeEngine(size_t workers,
                                            size_t categories,
                                            uint64_t seed) {
  auto engine = std::make_unique<SelectionEngine>();
  engine->SetFolder(SyntheticFolder(categories, 100));
  engine->PublishSnapshot(RandomSnapshot(workers, categories, seed));
  return engine;
}

BagOfWords SampleTask() {
  BagOfWords bag;
  bag.Add(7, 2);
  bag.Add(23, 1);
  bag.Add(55, 3);
  return bag;
}

// The EXPLAIN contract: attaching stats must not change the ranking in
// any way — same workers, same scores, element by element.
TEST(QueryStatsTest, RankingIdenticalWithAndWithoutStats) {
  auto plain_engine = MakeEngine(64, 4, 21);
  auto stats_engine = MakeEngine(64, 4, 21);
  const BagOfWords bag = SampleTask();
  const auto candidates = AllWorkers(64);
  for (size_t k : {1u, 5u, 32u, 64u, 100u}) {
    auto plain = plain_engine->SelectTopK(bag, k, candidates);
    QueryStats stats;
    auto explained =
        stats_engine->SelectTopK(bag, k, candidates, nullptr, &stats);
    ASSERT_TRUE(plain.ok() && explained.ok()) << "k=" << k;
    ASSERT_EQ(plain->size(), explained->size()) << "k=" << k;
    for (size_t i = 0; i < plain->size(); ++i) {
      EXPECT_EQ((*plain)[i].worker, (*explained)[i].worker)
          << "k=" << k << " rank=" << i;
      EXPECT_DOUBLE_EQ((*plain)[i].score, (*explained)[i].score);
    }
    // And the breakdown mirrors exactly what was returned.
    ASSERT_EQ(stats.breakdown.size(), explained->size());
    for (size_t i = 0; i < stats.breakdown.size(); ++i) {
      EXPECT_EQ(stats.breakdown[i].worker, (*explained)[i].worker);
      EXPECT_DOUBLE_EQ(stats.breakdown[i].score, (*explained)[i].score);
    }
  }
}

TEST(QueryStatsTest, PlanShapeAndLatenciesFilled) {
  auto engine = MakeEngine(32, 3, 5);
  QueryStats stats;
  auto top = engine->SelectTopK(SampleTask(), 4, AllWorkers(32), nullptr,
                               &stats);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(stats.snapshot_version, engine->snapshot()->version());
  EXPECT_EQ(stats.num_workers, 32u);
  EXPECT_EQ(stats.num_categories, 3u);
  EXPECT_EQ(stats.num_candidates, 32u);
  EXPECT_EQ(stats.k, 4u);
  EXPECT_FALSE(stats.parallel_scan);  // Default threshold is large.
  EXPECT_TRUE(stats.used_foldin);
  EXPECT_GT(stats.foldin_us, 0.0);
  EXPECT_GT(stats.scan_us, 0.0);
  EXPECT_GE(stats.total_us, stats.foldin_us);
  EXPECT_GE(stats.total_us, stats.scan_us);
}

TEST(QueryStatsTest, CacheMissThenHitPreservesCgCost) {
  auto engine = MakeEngine(16, 3, 9);
  const BagOfWords bag = SampleTask();
  QueryStats miss;
  ASSERT_TRUE(engine->SelectTopK(bag, 2, AllWorkers(16), nullptr, &miss).ok());
  EXPECT_FALSE(miss.cache_hit);
  EXPECT_GT(miss.cg_iterations, 0);

  QueryStats hit;
  ASSERT_TRUE(engine->SelectTopK(bag, 2, AllWorkers(16), nullptr, &hit).ok());
  EXPECT_TRUE(hit.cache_hit);
  // A hit reports the cached entry's original solve cost.
  EXPECT_EQ(hit.cg_iterations, miss.cg_iterations);
  EXPECT_DOUBLE_EQ(hit.cg_residual, miss.cg_residual);
}

TEST(QueryStatsTest, BreakdownTermsSumToScore) {
  auto engine = MakeEngine(24, 5, 33);
  QueryStats stats;
  auto top = engine->SelectTopK(SampleTask(), 6, AllWorkers(24), nullptr,
                               &stats);
  ASSERT_TRUE(top.ok());
  for (const CandidateBreakdown& c : stats.breakdown) {
    ASSERT_EQ(c.terms.size(), 5u);
    const double sum =
        std::accumulate(c.terms.begin(), c.terms.end(), 0.0);
    EXPECT_NEAR(sum, c.score, 1e-9);
  }
}

TEST(QueryStatsTest, MarginsAndCutoffAreConsistent) {
  auto engine = MakeEngine(40, 3, 17);
  QueryStats stats;
  auto top =
      engine->SelectTopK(SampleTask(), 5, AllWorkers(40), nullptr, &stats);
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(stats.breakdown.size(), 5u);
  // More candidates than k: the engine scanned rank k+1 for the cutoff.
  ASSERT_TRUE(stats.has_cutoff);
  EXPECT_LE(stats.cutoff_score, stats.breakdown.back().score);
  for (size_t i = 0; i + 1 < stats.breakdown.size(); ++i) {
    EXPECT_NEAR(stats.breakdown[i].margin,
                stats.breakdown[i].score - stats.breakdown[i + 1].score,
                1e-12);
    EXPECT_GE(stats.breakdown[i].margin, 0.0);
  }
  EXPECT_NEAR(stats.breakdown.back().margin,
              stats.breakdown.back().score - stats.cutoff_score, 1e-12);
}

TEST(QueryStatsTest, NoCutoffWhenEveryCandidateIsReturned) {
  auto engine = MakeEngine(8, 3, 2);
  QueryStats stats;
  auto top = engine->SelectTopK(SampleTask(), 8, AllWorkers(8), nullptr,
                               &stats);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 8u);
  EXPECT_FALSE(stats.has_cutoff);
  // Last rank's margin defaults to 0 without a cutoff.
  EXPECT_DOUBLE_EQ(stats.breakdown.back().margin, 0.0);
}

TEST(QueryStatsTest, ParallelScanFlagReflectsEngineOptions) {
  ServeOptions options;
  options.min_parallel_candidates = 4;
  options.num_threads = 2;
  SelectionEngine engine(options);
  engine.SetFolder(SyntheticFolder(3, 100));
  engine.PublishSnapshot(RandomSnapshot(32, 3, 4));
  QueryStats stats;
  ASSERT_TRUE(engine
                  .SelectTopK(SampleTask(), 2, AllWorkers(32), nullptr,
                              &stats)
                  .ok());
  EXPECT_TRUE(stats.parallel_scan);
}

TEST(QueryStatsTest, SelectorExplainedMatchesPlainSelect) {
  // Same parity contract one level up, through TdpmSelector.
  auto make_engine = [] { return MakeEngine(20, 3, 77); };
  auto a = make_engine();
  auto b = make_engine();
  const BagOfWords bag = SampleTask();
  QueryStats stats;
  auto plain = a->SelectTopK(bag, 6, AllWorkers(20));
  auto explained = b->SelectTopK(bag, 6, AllWorkers(20), nullptr, &stats);
  ASSERT_TRUE(plain.ok() && explained.ok());
  ASSERT_EQ(plain->size(), explained->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ((*plain)[i].worker, (*explained)[i].worker);
    EXPECT_DOUBLE_EQ((*plain)[i].score, (*explained)[i].score);
  }
}

TEST(QueryStatsTest, ToJsonAndToTextCarryTheRequiredFields) {
  auto engine = MakeEngine(16, 3, 41);
  QueryStats stats;
  auto top = engine->SelectTopK(SampleTask(), 3, AllWorkers(16), nullptr,
                               &stats);
  ASSERT_TRUE(top.ok());

  const std::string json = stats.ToJson();
  for (const char* field :
       {"\"snapshot\"", "\"version\"", "\"cache_hit\"", "\"cg_iterations\"",
        "\"latency_us\"", "\"foldin\"", "\"scan\"", "\"total\"",
        "\"ranking\"", "\"terms\"", "\"margin\"", "\"cutoff\""}) {
    EXPECT_NE(json.find(field), std::string::npos) << field;
  }

  const std::string text = stats.ToText();
  for (const char* needle :
       {"EXPLAIN crowd-selection query", "snapshot", "fold-in", "cache MISS",
        "CG", "iterations", "scan", "total", "ranking", "cutoff"}) {
    EXPECT_NE(text.find(needle), std::string::npos) << needle;
  }
  // The text plan lists exactly the returned ranks.
  EXPECT_NE(text.find("#1"), std::string::npos);
  EXPECT_NE(text.find("#3"), std::string::npos);
  EXPECT_EQ(text.find("#4"), std::string::npos);
}

TEST(QueryStatsTest, ExplainSurfacesKernelAndQuantMode) {
  auto engine = MakeEngine(16, 3, 43);
  QueryStats stats;
  auto top = engine->SelectTopK(SampleTask(), 3, AllWorkers(16), nullptr,
                                &stats);
  ASSERT_TRUE(top.ok());
  // Dense full-pool query: the dispatched kernel and fp64 mode surface.
  EXPECT_EQ(stats.kernel_id, engine->kernel().id());
  EXPECT_EQ(stats.quant, "fp64");
  EXPECT_EQ(stats.oversample, 0u);
  EXPECT_EQ(stats.rescored, 0u);
  const std::string text = stats.ToText();
  EXPECT_NE(text.find("kernel=" + stats.kernel_id), std::string::npos) << text;
  EXPECT_NE(text.find("quant=fp64"), std::string::npos) << text;
  const std::string json = stats.ToJson();
  EXPECT_NE(json.find("\"kernel\": {\"id\": \"" + stats.kernel_id + "\""),
            std::string::npos)
      << json;
}

TEST(QueryStatsTest, ExplainSurfacesInt8Rescore) {
  ServeOptions options;
  options.quant = ScanQuant::kInt8;
  options.oversample = 4;
  auto engine = std::make_unique<SelectionEngine>(options);
  engine->SetFolder(SyntheticFolder(3, 100));
  engine->PublishSnapshot(RandomSnapshot(64, 3, 44));
  QueryStats stats;
  auto top = engine->SelectTopK(SampleTask(), 4, AllWorkers(64), nullptr,
                                &stats);
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(stats.quant, "int8");
  EXPECT_EQ(stats.oversample, 4u);
  // Phase 1 keeps max(k + 1, k * oversample) = 16 ranks for the rescore
  // (the +1 cutoff rank is folded into the phase-1 ask).
  EXPECT_EQ(stats.rescored, 16u);
  const std::string text = stats.ToText();
  EXPECT_NE(text.find("quant=int8, oversample=4"), std::string::npos) << text;
  EXPECT_NE(text.find("rescored 16"), std::string::npos) << text;
}

TEST(QueryStatsTest, TdpmSelectorExplainedRankingMatches) {
  // Through the public selector API used by the CLI's explain command.
  CrowdDatabase db;
  db.AddWorker("w0");
  db.AddWorker("w1");
  db.AddWorker("w2");
  const std::vector<std::string> texts = {
      "alpha beta gamma", "beta gamma delta", "gamma delta alpha",
      "delta alpha beta"};
  for (const std::string& text : texts) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 3; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, 1.0 + w));
    }
  }
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 8;
  TdpmSelector selector(options);
  ASSERT_TRUE(selector.Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task =
      BagOfWords::FromTextFrozen("alpha gamma", tokenizer, db.vocabulary());
  QueryStats stats;
  auto plain = selector.SelectTopK(task, 2, {0, 1, 2});
  auto explained = selector.SelectTopKExplained(task, 2, {0, 1, 2}, &stats);
  ASSERT_TRUE(plain.ok() && explained.ok());
  ASSERT_EQ(plain->size(), explained->size());
  for (size_t i = 0; i < plain->size(); ++i) {
    EXPECT_EQ((*plain)[i].worker, (*explained)[i].worker);
    EXPECT_DOUBLE_EQ((*plain)[i].score, (*explained)[i].score);
  }
  EXPECT_EQ(stats.snapshot_version, 1u);
  EXPECT_TRUE(stats.has_cutoff);
}

}  // namespace
}  // namespace crowdselect::serve
