#include "serve/skill_matrix.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "serve/selection_engine.h"
#include "util/rng.h"

namespace crowdselect::serve {
namespace {

std::vector<WorkerPosterior> MakePosteriors(size_t n, size_t k,
                                            uint64_t seed) {
  Rng rng(seed);
  std::vector<WorkerPosterior> workers(n);
  for (auto& w : workers) {
    w.lambda = Vector(k);
    w.nu_sq = Vector(k, 0.1);
    for (size_t d = 0; d < k; ++d) w.lambda[d] = rng.Normal();
  }
  return workers;
}

TEST(SkillMatrixSnapshotTest, FromPosteriorsFlattensRowMajor) {
  const auto workers = MakePosteriors(5, 3, 1);
  auto snap = SkillMatrixSnapshot::FromPosteriors(workers);
  ASSERT_EQ(snap->num_workers(), 5u);
  ASSERT_EQ(snap->num_categories(), 3u);
  EXPECT_EQ(snap->version(), 1u);
  for (WorkerId w = 0; w < 5; ++w) {
    const double* row = snap->RowPtr(w);
    for (size_t d = 0; d < 3; ++d) {
      EXPECT_DOUBLE_EQ(row[d], workers[w].lambda[d]);
    }
  }
  // Rows are contiguous: row w+1 starts exactly K doubles after row w.
  EXPECT_EQ(snap->RowPtr(1), snap->RowPtr(0) + 3);
  EXPECT_EQ(snap->RowPtr(4), snap->RowPtr(0) + 4 * 3);
}

TEST(SkillMatrixSnapshotTest, EmptyPoolIsValid) {
  auto snap = SkillMatrixSnapshot::FromPosteriors({});
  EXPECT_EQ(snap->num_workers(), 0u);
  EXPECT_EQ(snap->num_categories(), 0u);
}

TEST(SkillMatrixSnapshotTest, ScoreMatchesDot) {
  const auto workers = MakePosteriors(4, 8, 2);
  auto snap = SkillMatrixSnapshot::FromPosteriors(workers);
  Rng rng(3);
  Vector category(8);
  for (size_t d = 0; d < 8; ++d) category[d] = rng.Normal();
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_NEAR(snap->Score(w, category), workers[w].lambda.Dot(category),
                1e-12);
  }
}

TEST(SkillMatrixSnapshotTest, WithUpdatedRowsIsCopyOnWrite) {
  const auto workers = MakePosteriors(4, 2, 4);
  auto v1 = SkillMatrixSnapshot::FromPosteriors(workers);
  Vector updated(2);
  updated[0] = 42.0;
  updated[1] = -7.0;
  auto v2 = v1->WithUpdatedRows({{1, updated}});
  EXPECT_EQ(v2->version(), v1->version() + 1);
  // The new version carries the update...
  EXPECT_DOUBLE_EQ(v2->RowPtr(1)[0], 42.0);
  EXPECT_DOUBLE_EQ(v2->RowPtr(1)[1], -7.0);
  // ...other rows are untouched...
  EXPECT_DOUBLE_EQ(v2->RowPtr(0)[0], workers[0].lambda[0]);
  EXPECT_DOUBLE_EQ(v2->RowPtr(3)[1], workers[3].lambda[1]);
  // ...and the original snapshot is unchanged.
  EXPECT_DOUBLE_EQ(v1->RowPtr(1)[0], workers[1].lambda[0]);
}

TEST(SkillMatrixSnapshotTest, PanelsMirrorTheRowMajorView) {
  const auto workers = MakePosteriors(11, 3, 9);
  auto snap = SkillMatrixSnapshot::FromPosteriors(workers);
  const kernels::BlockedPanels& panels = snap->panels();
  EXPECT_EQ(panels.num_workers(), snap->num_workers());
  EXPECT_EQ(panels.dims(), snap->num_categories());
  for (size_t w = 0; w < snap->num_workers(); ++w) {
    const double* panel = panels.PanelFp(w / kernels::kPanelWidth);
    const size_t lane = w % kernels::kPanelWidth;
    for (size_t d = 0; d < snap->num_categories(); ++d) {
      EXPECT_EQ(panel[d * kernels::kPanelWidth + lane], snap->RowPtr(w)[d])
          << "worker " << w << " dim " << d;
    }
  }
}

TEST(SkillMatrixSnapshotTest, WithUpdatedRowsReencodesPanels) {
  const auto workers = MakePosteriors(10, 2, 5);
  auto v1 = SkillMatrixSnapshot::FromPosteriors(workers);
  Vector updated(2);
  updated[0] = 42.0;
  updated[1] = -7.0;
  auto v2 = v1->WithUpdatedRows({{9, updated}});  // lane 1 of panel 1
  const kernels::BlockedPanels& panels = v2->panels();
  const double* panel = panels.PanelFp(1);
  EXPECT_EQ(panel[0 * kernels::kPanelWidth + 1], 42.0);
  EXPECT_EQ(panel[1 * kernels::kPanelWidth + 1], -7.0);
  // int8 variant re-encoded too: scale is max|row| / 127.
  EXPECT_DOUBLE_EQ(panels.scale(9), 42.0 / 127.0);
  // The original snapshot's panels are untouched.
  EXPECT_DOUBLE_EQ(v1->panels().PanelFp(1)[0 * kernels::kPanelWidth + 1],
                   workers[9].lambda[0]);
  // Same physical layout, same signature.
  EXPECT_EQ(v1->layout_signature(), v2->layout_signature());
}

TEST(SnapshotHandleTest, AcquireReturnsLatestPublish) {
  SnapshotHandle handle;
  EXPECT_EQ(handle.Acquire(), nullptr);
  auto v1 = SkillMatrixSnapshot::FromPosteriors(MakePosteriors(2, 2, 5), 1);
  handle.Publish(v1);
  EXPECT_EQ(handle.Acquire(), v1);
  auto v2 = v1->WithUpdatedRows({});
  handle.Publish(v2);
  EXPECT_EQ(handle.Acquire(), v2);
  // The old version stays alive for readers that still hold it.
  EXPECT_EQ(v1->version(), 1u);
}

// Writers keep publishing new versions while readers scan whatever
// version they acquired. Run under TSan in CI: the reader must never see
// a torn matrix, and every acquired snapshot must be internally
// consistent (all rows from the same version).
TEST(SnapshotHandleTest, ConcurrentPublishAndRead) {
  constexpr size_t kWorkers = 64;
  constexpr size_t kCategories = 4;
  constexpr int kPublishes = 200;
  // Version v sets every cell to v, so mixed-version reads are detectable.
  auto make_version = [](uint64_t v) {
    Matrix skills(kWorkers, kCategories);
    for (size_t w = 0; w < kWorkers; ++w) {
      for (size_t d = 0; d < kCategories; ++d) {
        skills(w, d) = static_cast<double>(v);
      }
    }
    return SkillMatrixSnapshot::FromMatrix(std::move(skills), v);
  };

  SnapshotHandle handle;
  handle.Publish(make_version(1));
  std::atomic<bool> stop{false};
  std::atomic<int> torn_reads{0};

  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto snap = handle.Acquire();
        const double expected = static_cast<double>(snap->version());
        for (WorkerId w = 0; w < kWorkers; ++w) {
          const double* row = snap->RowPtr(w);
          for (size_t d = 0; d < kCategories; ++d) {
            if (row[d] != expected) torn_reads.fetch_add(1);
          }
        }
      }
    });
  }
  std::thread writer([&] {
    for (uint64_t v = 2; v <= kPublishes; ++v) {
      handle.Publish(make_version(v));
    }
    stop.store(true);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(torn_reads.load(), 0);
  EXPECT_EQ(handle.Acquire()->version(), static_cast<uint64_t>(kPublishes));
}

// Same shape but through the engine: readers run full RankByCategory
// queries while a writer publishes incremental row updates.
TEST(SnapshotHandleTest, ConcurrentEngineQueriesDuringPublish) {
  constexpr size_t kWorkers = 128;
  constexpr size_t kCategories = 4;
  SelectionEngine engine;
  engine.PublishSnapshot(
      SkillMatrixSnapshot::FromPosteriors(MakePosteriors(kWorkers,
                                                         kCategories, 9)));
  std::vector<WorkerId> candidates;
  for (WorkerId w = 0; w < kWorkers; ++w) candidates.push_back(w);
  Vector category(kCategories, 1.0);

  std::atomic<bool> stop{false};
  std::atomic<int> failures{0};
  std::vector<std::thread> readers;
  for (int r = 0; r < 3; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_relaxed)) {
        auto ranked = engine.RankByCategory(category, 5, candidates);
        if (!ranked.ok() || ranked->size() != 5u) failures.fetch_add(1);
      }
    });
  }
  std::thread writer([&] {
    Rng rng(11);
    for (int i = 0; i < 100; ++i) {
      Vector row(kCategories);
      for (size_t d = 0; d < kCategories; ++d) row[d] = rng.Normal();
      auto current = engine.snapshot();
      engine.PublishSnapshot(current->WithUpdatedRows(
          {{static_cast<WorkerId>(rng.UniformInt(kWorkers)), row}}));
    }
    stop.store(true);
  });
  writer.join();
  for (auto& t : readers) t.join();
  EXPECT_EQ(failures.load(), 0);
}

}  // namespace
}  // namespace crowdselect::serve
