#include "serve/foldin_cache.h"

#include <gtest/gtest.h>

namespace crowdselect::serve {
namespace {

FoldInResult MakeResult(double value) {
  FoldInResult r;
  r.lambda = Vector(3, value);
  r.nu_sq = Vector(3, value / 10.0);
  r.category = Vector(3, -1.0);  // Must NOT be cached.
  return r;
}

TEST(HashBagTest, SameEntriesSameHashDifferentEntriesDifferentHash) {
  BagOfWords a, b, c;
  a.Add(3, 2);
  a.Add(7, 1);
  b.Add(7, 1);
  b.Add(3, 2);  // Same multiset, different insertion order.
  c.Add(3, 1);  // Different count.
  c.Add(7, 1);
  EXPECT_EQ(HashBag(a), HashBag(b));
  EXPECT_NE(HashBag(a), HashBag(c));
  EXPECT_NE(HashBag(a), HashBag(BagOfWords()));
}

TEST(HashBagTest, TermAndCountDoNotAlias) {
  // (term=1, count=2) must not collide with (term=2, count=1).
  BagOfWords a, b;
  a.Add(1, 2);
  b.Add(2, 1);
  EXPECT_NE(HashBag(a), HashBag(b));
}

TEST(FoldInCacheTest, MissThenHit) {
  FoldInCache cache(4);
  FoldInResult out;
  EXPECT_FALSE(cache.Lookup(42, &out));
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(42, MakeResult(2.0));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Lookup(42, &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_DOUBLE_EQ(out.lambda[0], 2.0);
  EXPECT_DOUBLE_EQ(out.nu_sq[0], 0.2);
  // The cached entry stores the posterior only; the category is left for
  // the caller to finalize per query.
  EXPECT_EQ(out.category.size(), 0u);
}

TEST(FoldInCacheTest, EvictsLeastRecentlyUsed) {
  FoldInCache cache(2);
  cache.Insert(1, MakeResult(1.0));
  cache.Insert(2, MakeResult(2.0));
  FoldInResult out;
  ASSERT_TRUE(cache.Lookup(1, &out));  // 1 is now most recent.
  cache.Insert(3, MakeResult(3.0));    // Evicts 2.
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(1, &out));
  EXPECT_FALSE(cache.Lookup(2, &out));
  EXPECT_TRUE(cache.Lookup(3, &out));
}

TEST(FoldInCacheTest, InsertExistingKeyRefreshesValue) {
  FoldInCache cache(2);
  cache.Insert(1, MakeResult(1.0));
  cache.Insert(1, MakeResult(9.0));
  EXPECT_EQ(cache.size(), 1u);
  FoldInResult out;
  ASSERT_TRUE(cache.Lookup(1, &out));
  EXPECT_DOUBLE_EQ(out.lambda[0], 9.0);
}

TEST(FoldInCacheTest, CapacityNeverExceeded) {
  FoldInCache cache(3);
  for (uint64_t key = 0; key < 50; ++key) {
    cache.Insert(key, MakeResult(static_cast<double>(key)));
    EXPECT_LE(cache.size(), 3u);
  }
  EXPECT_EQ(cache.evictions(), 47u);
  // The three most recent keys survive.
  FoldInResult out;
  EXPECT_TRUE(cache.Lookup(49, &out));
  EXPECT_TRUE(cache.Lookup(48, &out));
  EXPECT_TRUE(cache.Lookup(47, &out));
  EXPECT_FALSE(cache.Lookup(46, &out));
}

TEST(FoldInCacheTest, ZeroCapacityDisablesCaching) {
  FoldInCache cache(0);
  cache.Insert(1, MakeResult(1.0));
  EXPECT_EQ(cache.size(), 0u);
  FoldInResult out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

// Regression: keying on the content hash alone served one model's
// posterior to another model's query for the same task text. The
// namespace half of the key must isolate them even when the content
// hash is identical.
TEST(FoldInCacheNamespaceTest, SameHashDifferentNamespaceNeverHits) {
  FoldInCache cache(8);
  const uint64_t tdpm_ns = HashModelId("tdpm");
  const uint64_t ds_ns = HashModelId("dawid_skene");
  ASSERT_NE(tdpm_ns, ds_ns);
  const uint64_t key = 42;

  cache.Insert(tdpm_ns, key, MakeResult(1.0));
  FoldInResult out;
  EXPECT_FALSE(cache.Lookup(ds_ns, key, &out))
      << "a dawid_skene query must not see the tdpm posterior";
  ASSERT_TRUE(cache.Lookup(tdpm_ns, key, &out));
  EXPECT_DOUBLE_EQ(out.lambda[0], 1.0);

  // Both namespaces can hold the same content hash with different values.
  cache.Insert(ds_ns, key, MakeResult(7.0));
  ASSERT_TRUE(cache.Lookup(ds_ns, key, &out));
  EXPECT_DOUBLE_EQ(out.lambda[0], 7.0);
  ASSERT_TRUE(cache.Lookup(tdpm_ns, key, &out));
  EXPECT_DOUBLE_EQ(out.lambda[0], 1.0);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(FoldInCacheNamespaceTest, SnapshotFamilyChangesNamespace) {
  // The engine derives the namespace from (model id, projector
  // generation); a republished projector must not serve stale posteriors.
  const uint64_t base = HashModelId("tdpm");
  const uint64_t gen1 = base ^ (1 * 0x9E3779B97F4A7C15ULL);
  const uint64_t gen2 = base ^ (2 * 0x9E3779B97F4A7C15ULL);
  ASSERT_NE(gen1, gen2);
  FoldInCache cache(8);
  cache.Insert(gen1, 7, MakeResult(1.0));
  FoldInResult out;
  EXPECT_FALSE(cache.Lookup(gen2, 7, &out));
}

TEST(FoldInCacheNamespaceTest, LegacyFormsUseNamespaceZero) {
  FoldInCache cache(4);
  cache.Insert(5, MakeResult(3.0));
  FoldInResult out;
  ASSERT_TRUE(cache.Lookup(/*ns=*/0, 5, &out));
  EXPECT_DOUBLE_EQ(out.lambda[0], 3.0);
  EXPECT_FALSE(cache.Lookup(HashModelId("tdpm"), 5, &out));
}

TEST(FoldInCacheTest, ClearEmptiesButKeepsCounters) {
  FoldInCache cache(4);
  cache.Insert(1, MakeResult(1.0));
  FoldInResult out;
  ASSERT_TRUE(cache.Lookup(1, &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace crowdselect::serve
