#include "serve/foldin_cache.h"

#include <gtest/gtest.h>

namespace crowdselect::serve {
namespace {

FoldInResult MakeResult(double value) {
  FoldInResult r;
  r.lambda = Vector(3, value);
  r.nu_sq = Vector(3, value / 10.0);
  r.category = Vector(3, -1.0);  // Must NOT be cached.
  return r;
}

TEST(HashBagTest, SameEntriesSameHashDifferentEntriesDifferentHash) {
  BagOfWords a, b, c;
  a.Add(3, 2);
  a.Add(7, 1);
  b.Add(7, 1);
  b.Add(3, 2);  // Same multiset, different insertion order.
  c.Add(3, 1);  // Different count.
  c.Add(7, 1);
  EXPECT_EQ(HashBag(a), HashBag(b));
  EXPECT_NE(HashBag(a), HashBag(c));
  EXPECT_NE(HashBag(a), HashBag(BagOfWords()));
}

TEST(HashBagTest, TermAndCountDoNotAlias) {
  // (term=1, count=2) must not collide with (term=2, count=1).
  BagOfWords a, b;
  a.Add(1, 2);
  b.Add(2, 1);
  EXPECT_NE(HashBag(a), HashBag(b));
}

TEST(FoldInCacheTest, MissThenHit) {
  FoldInCache cache(4);
  FoldInResult out;
  EXPECT_FALSE(cache.Lookup(42, &out));
  EXPECT_EQ(cache.misses(), 1u);
  cache.Insert(42, MakeResult(2.0));
  EXPECT_EQ(cache.size(), 1u);
  ASSERT_TRUE(cache.Lookup(42, &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_DOUBLE_EQ(out.lambda[0], 2.0);
  EXPECT_DOUBLE_EQ(out.nu_sq[0], 0.2);
  // The cached entry stores the posterior only; the category is left for
  // the caller to finalize per query.
  EXPECT_EQ(out.category.size(), 0u);
}

TEST(FoldInCacheTest, EvictsLeastRecentlyUsed) {
  FoldInCache cache(2);
  cache.Insert(1, MakeResult(1.0));
  cache.Insert(2, MakeResult(2.0));
  FoldInResult out;
  ASSERT_TRUE(cache.Lookup(1, &out));  // 1 is now most recent.
  cache.Insert(3, MakeResult(3.0));    // Evicts 2.
  EXPECT_EQ(cache.evictions(), 1u);
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(1, &out));
  EXPECT_FALSE(cache.Lookup(2, &out));
  EXPECT_TRUE(cache.Lookup(3, &out));
}

TEST(FoldInCacheTest, InsertExistingKeyRefreshesValue) {
  FoldInCache cache(2);
  cache.Insert(1, MakeResult(1.0));
  cache.Insert(1, MakeResult(9.0));
  EXPECT_EQ(cache.size(), 1u);
  FoldInResult out;
  ASSERT_TRUE(cache.Lookup(1, &out));
  EXPECT_DOUBLE_EQ(out.lambda[0], 9.0);
}

TEST(FoldInCacheTest, CapacityNeverExceeded) {
  FoldInCache cache(3);
  for (uint64_t key = 0; key < 50; ++key) {
    cache.Insert(key, MakeResult(static_cast<double>(key)));
    EXPECT_LE(cache.size(), 3u);
  }
  EXPECT_EQ(cache.evictions(), 47u);
  // The three most recent keys survive.
  FoldInResult out;
  EXPECT_TRUE(cache.Lookup(49, &out));
  EXPECT_TRUE(cache.Lookup(48, &out));
  EXPECT_TRUE(cache.Lookup(47, &out));
  EXPECT_FALSE(cache.Lookup(46, &out));
}

TEST(FoldInCacheTest, ZeroCapacityDisablesCaching) {
  FoldInCache cache(0);
  cache.Insert(1, MakeResult(1.0));
  EXPECT_EQ(cache.size(), 0u);
  FoldInResult out;
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);
}

TEST(FoldInCacheTest, ClearEmptiesButKeepsCounters) {
  FoldInCache cache(4);
  cache.Insert(1, MakeResult(1.0));
  FoldInResult out;
  ASSERT_TRUE(cache.Lookup(1, &out));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.Lookup(1, &out));
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

}  // namespace
}  // namespace crowdselect::serve
