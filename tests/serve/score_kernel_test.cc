#include "serve/kernels/score_kernel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <vector>

#include "linalg/matrix.h"
#include "util/cpuid.h"
#include "util/rng.h"

namespace crowdselect::serve::kernels {
namespace {

Matrix RandomMatrix(size_t n, size_t k, uint64_t seed) {
  Rng rng(seed);
  Matrix m(n, k);
  for (size_t w = 0; w < n; ++w) {
    for (size_t d = 0; d < k; ++d) m(w, d) = rng.Normal();
  }
  return m;
}

std::vector<double> RandomQuery(size_t k, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> q(k);
  for (double& v : q) v = rng.Normal();
  return q;
}

// Bitwise comparison: the determinism contract promises identical bits,
// not just identical-to-epsilon values.
void ExpectBitwiseEqual(const double* a, const double* b, size_t n,
                        const char* what) {
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(std::memcmp(&a[i], &b[i], sizeof(double)), 0)
        << what << " lane " << i << ": " << a[i] << " vs " << b[i];
  }
}

TEST(BlockedPanelsTest, BuildMatchesRowMajor) {
  const Matrix m = RandomMatrix(19, 5, 11);
  const BlockedPanels panels = BlockedPanels::Build(m);
  EXPECT_EQ(panels.num_workers(), 19u);
  EXPECT_EQ(panels.dims(), 5u);
  EXPECT_EQ(panels.num_panels(), 3u);  // ceil(19 / 8)
  for (size_t w = 0; w < 19; ++w) {
    const double* panel = panels.PanelFp(w / kPanelWidth);
    const size_t lane = w % kPanelWidth;
    for (size_t d = 0; d < 5; ++d) {
      EXPECT_EQ(panel[d * kPanelWidth + lane], m(w, d))
          << "worker " << w << " dim " << d;
    }
  }
}

TEST(BlockedPanelsTest, LastPanelIsZeroPadded) {
  const Matrix m = RandomMatrix(9, 4, 3);
  const BlockedPanels panels = BlockedPanels::Build(m);
  ASSERT_EQ(panels.num_panels(), 2u);
  const double* fp = panels.PanelFp(1);
  const int8_t* q8 = panels.PanelQ8(1);
  const double* scales = panels.PanelScales(1);
  for (size_t d = 0; d < 4; ++d) {
    for (size_t lane = 1; lane < kPanelWidth; ++lane) {  // worker 9..15 pad
      EXPECT_EQ(fp[d * kPanelWidth + lane], 0.0);
      EXPECT_EQ(q8[d * kPanelWidth + lane], 0);
    }
  }
  for (size_t lane = 1; lane < kPanelWidth; ++lane) {
    EXPECT_EQ(scales[lane], 0.0);
  }
}

TEST(BlockedPanelsTest, Int8ErrorBoundedByHalfScale) {
  const Matrix m = RandomMatrix(40, 7, 21);
  const BlockedPanels panels = BlockedPanels::Build(m);
  for (size_t w = 0; w < 40; ++w) {
    const double scale = panels.scale(w);
    const int8_t* q8 = panels.PanelQ8(w / kPanelWidth);
    const size_t lane = w % kPanelWidth;
    for (size_t d = 0; d < 7; ++d) {
      const double dequant = scale * q8[d * kPanelWidth + lane];
      EXPECT_LE(std::fabs(dequant - m(w, d)), scale * 0.5 + 1e-12)
          << "worker " << w << " dim " << d;
    }
  }
}

TEST(BlockedPanelsTest, ZeroRowGetsZeroScaleAndCodes) {
  Matrix m(9, 3);
  for (size_t d = 0; d < 3; ++d) m(4, d) = 0.0;
  m(0, 0) = 1.0;
  const BlockedPanels panels = BlockedPanels::Build(m);
  EXPECT_EQ(panels.scale(4), 0.0);
  std::vector<double> q = RandomQuery(3, 5);
  EXPECT_EQ(panels.LaneScoreInt8(4, q.data()), 0.0);
  EXPECT_EQ(panels.LaneScore(4, q.data()), 0.0);
}

TEST(BlockedPanelsTest, ReencodeRowMatchesFreshBuild) {
  Matrix m = RandomMatrix(21, 6, 31);
  BlockedPanels panels = BlockedPanels::Build(m);
  // Update three rows (first, middle-of-panel, last) in place.
  const std::vector<double> replacement = RandomQuery(6, 77);
  for (size_t w : {size_t{0}, size_t{12}, size_t{20}}) {
    for (size_t d = 0; d < 6; ++d) m(w, d) = replacement[d] + double(w);
    panels.ReencodeRow(w, m.RowPtr(w));
  }
  const BlockedPanels fresh = BlockedPanels::Build(m);
  ASSERT_EQ(panels.num_panels(), fresh.num_panels());
  const size_t panel_doubles = panels.dims() * kPanelWidth;
  for (size_t p = 0; p < panels.num_panels(); ++p) {
    EXPECT_EQ(std::memcmp(panels.PanelFp(p), fresh.PanelFp(p),
                          panel_doubles * sizeof(double)),
              0)
        << "fp panel " << p;
    EXPECT_EQ(std::memcmp(panels.PanelQ8(p), fresh.PanelQ8(p), panel_doubles),
              0)
        << "q8 panel " << p;
    EXPECT_EQ(std::memcmp(panels.PanelScales(p), fresh.PanelScales(p),
                          kPanelWidth * sizeof(double)),
              0)
        << "scales panel " << p;
  }
}

TEST(BlockedPanelsTest, SignatureTracksLayoutNotContents) {
  const BlockedPanels a = BlockedPanels::Build(RandomMatrix(10, 4, 1));
  const BlockedPanels b = BlockedPanels::Build(RandomMatrix(30, 4, 2));
  const BlockedPanels c = BlockedPanels::Build(RandomMatrix(10, 5, 1));
  // Same physical layout (dims) regardless of contents / worker count...
  EXPECT_EQ(a.Signature(), b.Signature());
  // ...different dimensionality is a different layout generation.
  EXPECT_NE(a.Signature(), c.Signature());
}

TEST(ScoreKernelTest, ScalarMatchesLaneScoreBitwise) {
  for (size_t dims : {1u, 2u, 3u, 7u, 8u, 16u, 17u}) {
    const Matrix m = RandomMatrix(13, dims, 100 + dims);
    const BlockedPanels panels = BlockedPanels::Build(m);
    const std::vector<double> q = RandomQuery(dims, 200 + dims);
    const ScoreKernel& scalar = ScalarScoreKernel();
    for (size_t p = 0; p < panels.num_panels(); ++p) {
      double out[kPanelWidth];
      scalar.ScoreBlock(panels.PanelFp(p), q.data(), dims, out);
      double out8[kPanelWidth];
      scalar.ScoreBlockInt8(panels.PanelQ8(p), panels.PanelScales(p), q.data(),
                            dims, out8);
      for (size_t l = 0; l < kPanelWidth; ++l) {
        const size_t w = p * kPanelWidth + l;
        if (w >= panels.num_workers()) continue;
        const double lane_fp = panels.LaneScore(w, q.data());
        const double lane_q8 = panels.LaneScoreInt8(w, q.data());
        ExpectBitwiseEqual(&out[l], &lane_fp, 1, "fp");
        ExpectBitwiseEqual(&out8[l], &lane_q8, 1, "int8");
      }
    }
  }
}

// The core SIMD acceptance test: whatever vector kernel this machine
// has must reproduce the scalar reference bit for bit, fp and int8,
// across dimensionalities that exercise every unroll remainder.
TEST(ScoreKernelTest, VectorKernelsMatchScalarBitwise) {
  std::vector<const ScoreKernel*> vector_kernels;
  if (const ScoreKernel* avx2 = Avx2ScoreKernelOrNull()) {
    vector_kernels.push_back(avx2);
  }
  if (const ScoreKernel* neon = NeonScoreKernelOrNull()) {
    vector_kernels.push_back(neon);
  }
  if (vector_kernels.empty()) {
    GTEST_SKIP() << "no vector kernel on this machine";
  }
  const ScoreKernel& scalar = ScalarScoreKernel();
  for (const ScoreKernel* kernel : vector_kernels) {
    for (size_t dims = 1; dims <= 17; ++dims) {
      const Matrix m = RandomMatrix(64, dims, 1000 + dims);
      const BlockedPanels panels = BlockedPanels::Build(m);
      const std::vector<double> q = RandomQuery(dims, 2000 + dims);
      for (size_t p = 0; p < panels.num_panels(); ++p) {
        double ref[kPanelWidth];
        double got[kPanelWidth];
        scalar.ScoreBlock(panels.PanelFp(p), q.data(), dims, ref);
        kernel->ScoreBlock(panels.PanelFp(p), q.data(), dims, got);
        ExpectBitwiseEqual(got, ref, kPanelWidth, kernel->id());
        scalar.ScoreBlockInt8(panels.PanelQ8(p), panels.PanelScales(p),
                              q.data(), dims, ref);
        kernel->ScoreBlockInt8(panels.PanelQ8(p), panels.PanelScales(p),
                               q.data(), dims, got);
        ExpectBitwiseEqual(got, ref, kPanelWidth, kernel->id());
      }
    }
  }
}

TEST(ScoreKernelTest, DispatchHonorsForceScalarFlag) {
  const ScoreKernel& forced = DispatchScoreKernel(/*force_scalar=*/true);
  EXPECT_STREQ(forced.id(), "scalar");
  EXPECT_EQ(ScoreKernelOrdinal(forced), 0u);
}

TEST(ScoreKernelTest, DispatchHonorsForceScalarEnv) {
  const char* prior = std::getenv(kForceScalarEnvVar);
  setenv(kForceScalarEnvVar, "1", /*overwrite=*/1);
  EXPECT_STREQ(DispatchScoreKernel().id(), "scalar");
  if (prior != nullptr) {
    setenv(kForceScalarEnvVar, prior, /*overwrite=*/1);
  } else {
    unsetenv(kForceScalarEnvVar);
  }
}

TEST(ScoreKernelTest, DispatchPicksVectorKernelWhenAvailable) {
  const char* prior = std::getenv(kForceScalarEnvVar);
  unsetenv(kForceScalarEnvVar);
  const ScoreKernel& kernel = DispatchScoreKernel();
  if (DetectCpuFeatures().avx2) {
    EXPECT_STREQ(kernel.id(), "avx2");
    EXPECT_EQ(ScoreKernelOrdinal(kernel), 1u);
  } else if (DetectCpuFeatures().neon) {
    EXPECT_STREQ(kernel.id(), "neon");
    EXPECT_EQ(ScoreKernelOrdinal(kernel), 2u);
  } else {
    EXPECT_STREQ(kernel.id(), "scalar");
  }
  if (prior != nullptr) setenv(kForceScalarEnvVar, prior, /*overwrite=*/1);
}

}  // namespace
}  // namespace crowdselect::serve::kernels
