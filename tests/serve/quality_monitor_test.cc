#include "serve/quality_monitor.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

#include "crowddb/jsonl.h"
#include "crowddb/selector_interface.h"
#include "obs/metrics.h"
#include "text/bag_of_words.h"

namespace crowdselect::serve {
namespace {

BagOfWords SomeTask() {
  BagOfWords bag;
  bag.Add(/*term=*/1, /*count=*/3);
  return bag;
}

std::vector<RankedWorker> Ranked(
    const std::vector<std::pair<WorkerId, double>>& scores) {
  std::vector<RankedWorker> out;
  for (const auto& [worker, score] : scores) out.push_back({worker, score});
  return out;
}

TEST(QualityMonitorTest, PerfectAgreementScoresZeroRmseAndTopOne) {
  obs::MetricsRegistry registry;
  QualityMonitorConfig config;
  config.model_id = "m";
  config.window_size = 4;
  QualityMonitor monitor(config, &registry);

  // Prediction and feedback agree exactly (up to scale): normalized
  // RMSE 0, top-1 hit, perfect correlation.
  for (int i = 0; i < 4; ++i) {
    monitor.OnResolvedTask(SomeTask(),
                           Ranked({{1, 0.9}, {2, 0.5}, {3, 0.1}}),
                           {{1, 9.0}, {2, 5.0}, {3, 1.0}});
  }
  const QualitySummary s = monitor.Summary();
  EXPECT_EQ(s.tasks_observed, 4u);
  EXPECT_EQ(s.tasks_skipped, 0u);
  EXPECT_LT(s.rmse_mean, 0.05);
  EXPECT_GT(s.top1_agreement_mean, 0.9);
  EXPECT_GT(s.calibration_mean, 0.9);
  EXPECT_FALSE(s.rmse_degraded);
  EXPECT_EQ(registry.GetCounter("quality.m.tasks_observed")->Value(), 4u);

  // The full window rotated, so the signal gauges are live.
  EXPECT_LT(registry.GetGauge("quality.m.rmse.p95")->Value(), 0.05);
  EXPECT_EQ(registry.GetGauge("quality.m.rmse.samples")->Value(), 4.0);
}

TEST(QualityMonitorTest, InvertedRankingScoresHighRmseAndMissesTopOne) {
  obs::MetricsRegistry registry;
  QualityMonitor monitor({.model_id = "inv", .window_size = 2}, &registry);
  for (int i = 0; i < 2; ++i) {
    // Model ranks worker 1 first; the crowd says worker 3 was best.
    monitor.OnResolvedTask(SomeTask(),
                           Ranked({{1, 0.9}, {2, 0.5}, {3, 0.1}}),
                           {{1, 1.0}, {2, 5.0}, {3, 9.0}});
  }
  const QualitySummary s = monitor.Summary();
  EXPECT_GT(s.rmse_mean, 0.5);
  EXPECT_LT(s.top1_agreement_mean, 0.1);
  EXPECT_LT(s.calibration_mean, -0.9);
}

TEST(QualityMonitorTest, TasksWithFewerThanTwoMatchedWorkersAreSkipped) {
  obs::MetricsRegistry registry;
  QualityMonitor monitor({.model_id = "s"}, &registry);
  // One matched worker (2 is predicted but has no feedback; 9 has
  // feedback but was not predicted).
  monitor.OnResolvedTask(SomeTask(), Ranked({{1, 0.9}, {2, 0.5}}),
                         {{1, 3.0}, {9, 1.0}});
  // Empty intersection.
  monitor.OnResolvedTask(SomeTask(), Ranked({{1, 0.9}}), {{7, 1.0}});
  const QualitySummary s = monitor.Summary();
  EXPECT_EQ(s.tasks_observed, 0u);
  EXPECT_EQ(s.tasks_skipped, 2u);
  EXPECT_EQ(registry.GetCounter("quality.s.tasks_skipped")->Value(), 2u);
}

TEST(QualityMonitorTest, SpammerOnsetFlagsTheDriftingWorker) {
  obs::MetricsRegistry registry;
  QualityMonitorConfig config;
  config.model_id = "d";
  config.window_size = 100;
  config.drift_z_threshold = 2.0;
  config.min_observations = 5;
  QualityMonitor monitor(config, &registry);

  // Reference period: everyone — including worker 6 — performs exactly
  // as predicted, so every baseline freezes near zero deviation.
  for (int i = 0; i < 10; ++i) {
    monitor.OnResolvedTask(
        SomeTask(),
        Ranked({{6, 0.95}, {1, 0.9}, {2, 0.7}, {3, 0.5}, {4, 0.3}, {5, 0.1}}),
        {{6, 9.5}, {1, 9.0}, {2, 7.0}, {3, 5.0}, {4, 3.0}, {5, 1.0}});
  }
  EXPECT_EQ(monitor.Summary().drift_flagged, 0u);

  // Onset: worker 6 turns spammer (worst feedback while still predicted
  // best) — its residual EWMA dives far below its frozen baseline.
  for (int i = 0; i < 20; ++i) {
    monitor.OnResolvedTask(
        SomeTask(),
        Ranked({{6, 0.95}, {1, 0.9}, {2, 0.7}, {3, 0.5}, {4, 0.3}, {5, 0.1}}),
        {{1, 9.0}, {2, 7.0}, {3, 5.0}, {4, 3.0}, {5, 1.0}, {6, 0.0}});
  }
  const QualitySummary s = monitor.Summary();
  EXPECT_GE(s.drift_flagged, 1u);
  ASSERT_FALSE(s.flagged_workers.empty());
  EXPECT_EQ(s.flagged_workers[0], 6u);
  EXPECT_GT(s.drift_max_abs_z, config.drift_z_threshold);
  EXPECT_GE(registry.GetGauge("quality.d.drift.flagged")->Value(), 1.0);
  EXPECT_EQ(registry.GetGauge("quality.d.drift.workers")->Value(), 6.0);

  const std::vector<WorkerDriftStatus> drift = monitor.WorkerDrift();
  ASSERT_EQ(drift.size(), 6u);
  bool found = false;
  for (const WorkerDriftStatus& w : drift) {
    if (w.worker != 6) {
      EXPECT_FALSE(w.flagged);
      continue;
    }
    found = true;
    EXPECT_TRUE(w.flagged);
    // Post-onset feedback sits far below the worker's own baseline.
    EXPECT_LT(w.residual_ewma, w.baseline - 0.5);
    EXPECT_EQ(w.observations, 30u);
  }
  EXPECT_TRUE(found);
}

TEST(QualityMonitorTest, PersistentMispricingIsNotDrift) {
  obs::MetricsRegistry registry;
  QualityMonitorConfig config;
  config.model_id = "bias";
  config.drift_z_threshold = 2.0;
  config.min_observations = 5;
  QualityMonitor monitor(config, &registry);
  // Worker 4 is mis-priced from the very first task (predicted worst,
  // delivers best) and never changes. Its residual EWMA is large, but
  // its deviation from its own baseline is ~0 — no drift.
  for (int i = 0; i < 40; ++i) {
    monitor.OnResolvedTask(
        SomeTask(), Ranked({{1, 0.9}, {2, 0.7}, {3, 0.3}, {4, 0.1}}),
        {{1, 8.0}, {2, 7.0}, {3, 2.0}, {4, 9.0}});
  }
  EXPECT_EQ(monitor.Summary().drift_flagged, 0u);
  for (const WorkerDriftStatus& w : monitor.WorkerDrift()) {
    if (w.worker == 4) {
      EXPECT_GT(w.residual_ewma, 0.5);  // Mis-priced, yes...
      EXPECT_FALSE(w.flagged);          // ...but stable, so not drifting.
    }
  }
}

TEST(QualityMonitorTest, NoDriftFlagsWithoutAPopulation) {
  obs::MetricsRegistry registry;
  QualityMonitor monitor({.model_id = "p", .min_observations = 1}, &registry);
  // Only two workers ever observed: z-scores need >= 3 eligible.
  for (int i = 0; i < 10; ++i) {
    monitor.OnResolvedTask(SomeTask(), Ranked({{1, 0.9}, {2, 0.1}}),
                           {{1, 1.0}, {2, 9.0}});
  }
  EXPECT_EQ(monitor.Summary().drift_flagged, 0u);
}

TEST(QualityMonitorTest, RmseDegradationComparesFirstAndLastWindow) {
  obs::MetricsRegistry registry;
  QualityMonitor monitor({.model_id = "deg", .window_size = 5}, &registry);
  // Window 1: perfect agreement.
  for (int i = 0; i < 5; ++i) {
    monitor.OnResolvedTask(SomeTask(), Ranked({{1, 0.9}, {2, 0.1}}),
                           {{1, 9.0}, {2, 1.0}});
  }
  EXPECT_FALSE(monitor.Summary().rmse_degraded);
  // Window 2: inverted.
  for (int i = 0; i < 5; ++i) {
    monitor.OnResolvedTask(SomeTask(), Ranked({{1, 0.9}, {2, 0.1}}),
                           {{1, 1.0}, {2, 9.0}});
  }
  const QualitySummary s = monitor.Summary();
  EXPECT_TRUE(s.rmse_degraded);
  EXPECT_GT(s.rmse_last_window, s.rmse_first_window + 0.05);
}

TEST(QualityMonitorTest, RotateWindowsPublishesThePartialWindow) {
  obs::MetricsRegistry registry;
  QualityMonitor monitor({.model_id = "rot", .window_size = 1000}, &registry);
  monitor.OnResolvedTask(SomeTask(), Ranked({{1, 0.9}, {2, 0.1}}),
                         {{1, 9.0}, {2, 1.0}});
  // Window far from full: gauges still zero.
  EXPECT_EQ(registry.GetGauge("quality.rot.rmse.window_count")->Value(), 0.0);
  monitor.RotateWindows();
  EXPECT_EQ(registry.GetGauge("quality.rot.rmse.window_count")->Value(), 1.0);
  EXPECT_EQ(registry.GetGauge("quality.rot.rmse.samples")->Value(), 1.0);
  EXPECT_GT(monitor.Summary().rmse_last_window, -1.0);
}

TEST(QualityMonitorTest, SummaryJsonIsFlatAndParseable) {
  obs::MetricsRegistry registry;
  QualityMonitor monitor({.model_id = "json"}, &registry);
  monitor.OnResolvedTask(SomeTask(), Ranked({{1, 0.9}, {2, 0.1}}),
                         {{1, 9.0}, {2, 1.0}});
  auto object = jsonl::ParseObject(monitor.SummaryJson());
  ASSERT_TRUE(object.ok()) << object.status().ToString();
  EXPECT_EQ(std::get<std::string>((*object)["model"]), "json");
  EXPECT_EQ(std::get<double>((*object)["tasks_observed"]), 1.0);
  EXPECT_TRUE(object->count("rmse_mean"));
  EXPECT_TRUE(object->count("rmse_degraded"));
  EXPECT_TRUE(object->count("population_drift_z"));
  EXPECT_TRUE(object->count("flagged_workers"));
}

}  // namespace
}  // namespace crowdselect::serve
