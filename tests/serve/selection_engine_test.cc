#include "serve/selection_engine.h"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "crowddb/crowd_database.h"
#include "model/selection.h"
#include "obs/metrics.h"
#include "serve/skill_matrix.h"
#include "util/logging.h"
#include "util/rng.h"

namespace crowdselect::serve {
namespace {

std::shared_ptr<const SkillMatrixSnapshot> RandomSnapshot(size_t n, size_t k,
                                                          uint64_t seed) {
  Rng rng(seed);
  Matrix skills(n, k);
  for (size_t w = 0; w < n; ++w) {
    for (size_t d = 0; d < k; ++d) skills(w, d) = rng.Normal();
  }
  return SkillMatrixSnapshot::FromMatrix(std::move(skills));
}

TaskFolder SyntheticFolder(size_t k, size_t vocab) {
  TdpmOptions options;
  options.num_categories = k;
  auto folder = TaskFolder::Create(TdpmModelParams::Init(k, vocab), options);
  CS_CHECK(folder.ok());
  return std::move(*folder);
}

std::vector<WorkerId> AllWorkers(size_t n) {
  std::vector<WorkerId> ids(n);
  for (size_t w = 0; w < n; ++w) ids[w] = static_cast<WorkerId>(w);
  return ids;
}

TEST(SelectionEngineTest, RequiresSnapshotAndFolder) {
  SelectionEngine engine;
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(engine.SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
  EXPECT_TRUE(engine.Project(bag).status().IsFailedPrecondition());
  engine.PublishSnapshot(RandomSnapshot(4, 2, 1));
  // Snapshot alone is not enough: fold-in needs the projector.
  EXPECT_TRUE(engine.SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
  Vector category(2, 1.0);
  // RankByCategory needs no folder.
  EXPECT_TRUE(engine.RankByCategory(category, 1, {0}).ok());
}

TEST(SelectionEngineTest, ParallelScanMatchesSequentialExactly) {
  constexpr size_t kWorkers = 1000;
  constexpr size_t kCategories = 6;
  auto snapshot = RandomSnapshot(kWorkers, kCategories, 7);
  Vector category(kCategories);
  Rng rng(8);
  for (size_t d = 0; d < kCategories; ++d) category[d] = rng.Normal();
  const auto candidates = AllWorkers(kWorkers);

  SelectionEngine sequential;  // Default threshold: inline scan.
  sequential.PublishSnapshot(snapshot);
  ServeOptions parallel_options;
  parallel_options.min_parallel_candidates = 1;
  parallel_options.scan_block = 64;
  parallel_options.num_threads = 4;
  SelectionEngine parallel(parallel_options);
  parallel.PublishSnapshot(snapshot);

  for (size_t k : {1u, 10u, 128u, 2000u}) {
    auto a = sequential.RankByCategory(category, k, candidates);
    auto b = parallel.RankByCategory(category, k, candidates);
    ASSERT_TRUE(a.ok() && b.ok());
    ASSERT_EQ(a->size(), b->size()) << "k=" << k;
    for (size_t i = 0; i < a->size(); ++i) {
      EXPECT_EQ((*a)[i].worker, (*b)[i].worker) << "k=" << k << " i=" << i;
      EXPECT_DOUBLE_EQ((*a)[i].score, (*b)[i].score);
    }
  }
}

TEST(SelectionEngineTest, ParallelScanDeterministicUnderTies) {
  // Every worker shares one of four scores: shard merge order must not
  // leak into the ranking (ties break by lower id in every shard split).
  constexpr size_t kWorkers = 512;
  Matrix skills(kWorkers, 1);
  for (size_t w = 0; w < kWorkers; ++w) {
    skills(w, 0) = static_cast<double>(w % 4);
  }
  Vector category(1, 1.0);
  ServeOptions options;
  options.min_parallel_candidates = 1;
  options.scan_block = 10;  // Many unevenly-tied shards.
  options.num_threads = 4;
  SelectionEngine engine(options);
  engine.PublishSnapshot(SkillMatrixSnapshot::FromMatrix(std::move(skills)));
  auto top = engine.RankByCategory(category, 6, AllWorkers(kWorkers));
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 6u);
  // Score 3 workers are ids 3, 7, 11, ...: the six lowest win, in order.
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ((*top)[i].worker, static_cast<WorkerId>(3 + 4 * i));
    EXPECT_DOUBLE_EQ((*top)[i].score, 3.0);
  }
}

TEST(SelectionEngineTest, RankWithScoreParallelMatchesAccumulator) {
  const auto candidates = AllWorkers(300);
  auto score = [](WorkerId w) {
    return static_cast<double>((w * 37) % 101);
  };
  TopKAccumulator expected(12);
  for (WorkerId w : candidates) expected.Offer(w, score(w));
  ServeOptions options;
  options.min_parallel_candidates = 1;
  options.scan_block = 16;
  options.num_threads = 3;
  SelectionEngine engine(options);
  const auto got = engine.RankWithScore(12, candidates, score);
  const auto want = expected.Take();
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].worker, want[i].worker);
    EXPECT_DOUBLE_EQ(got[i].score, want[i].score);
  }
}

TEST(SelectionEngineTest, ProjectCachesThePosterior) {
  SelectionEngine engine;
  engine.SetFolder(SyntheticFolder(3, 50));
  BagOfWords bag;
  bag.Add(4, 2);
  bag.Add(11, 1);
  auto first = engine.Project(bag);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(engine.cache()->misses(), 1u);
  EXPECT_EQ(engine.cache()->hits(), 0u);
  auto second = engine.Project(bag);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(engine.cache()->hits(), 1u);
  // Cached result is bit-identical (mean category, no sampling).
  ASSERT_EQ(first->category.size(), second->category.size());
  for (size_t d = 0; d < first->category.size(); ++d) {
    EXPECT_DOUBLE_EQ(first->category[d], second->category[d]);
    EXPECT_DOUBLE_EQ(first->lambda[d], second->lambda[d]);
    EXPECT_DOUBLE_EQ(first->nu_sq[d], second->nu_sq[d]);
  }
}

TEST(SelectionEngineTest, ZeroCapacityCacheStillServes) {
  ServeOptions options;
  options.foldin_cache_capacity = 0;
  SelectionEngine engine(options);
  engine.SetFolder(SyntheticFolder(3, 50));
  engine.PublishSnapshot(RandomSnapshot(8, 3, 12));
  BagOfWords bag;
  bag.Add(1);
  auto top = engine.SelectTopK(bag, 3, AllWorkers(8));
  ASSERT_TRUE(top.ok());
  EXPECT_EQ(top->size(), 3u);
  EXPECT_EQ(engine.cache()->hits(), 0u);
}

TEST(SelectionEngineTest, SetFolderInvalidatesCache) {
  SelectionEngine engine;
  engine.SetFolder(SyntheticFolder(3, 50));
  BagOfWords bag;
  bag.Add(4, 2);
  ASSERT_TRUE(engine.Project(bag).ok());
  EXPECT_EQ(engine.cache()->size(), 1u);
  // A retrained model must not serve the old model's posteriors.
  engine.SetFolder(SyntheticFolder(3, 50));
  EXPECT_EQ(engine.cache()->size(), 0u);
}

TEST(SelectionEngineTest, InvalidCandidateFailsBeforeMetering) {
  obs::MetricsRegistry::Global().SetEnabled(true);
  obs::MetricsRegistry::Global().ResetAll();
  SelectionEngine engine;
  engine.SetFolder(SyntheticFolder(2, 20));
  engine.PublishSnapshot(RandomSnapshot(4, 2, 13));
  BagOfWords bag;
  bag.Add(1);
  auto bad = engine.SelectTopK(bag, 1, {0, 1, 99});
  EXPECT_TRUE(bad.status().IsInvalidArgument());
  const auto snap = obs::MetricsRegistry::Global().Snapshot();
  const auto* queries = snap.FindCounter("serve.queries");
  if (queries != nullptr) {
    EXPECT_EQ(queries->value, 0u) << "failed query must not be metered";
  }
  // No fold-in ran either: the cache saw no traffic.
  EXPECT_EQ(engine.cache()->hits() + engine.cache()->misses(), 0u);

  auto good = engine.SelectTopK(bag, 1, {0, 1});
  ASSERT_TRUE(good.ok());
  const auto snap2 = obs::MetricsRegistry::Global().Snapshot();
  ASSERT_NE(snap2.FindCounter("serve.queries"), nullptr);
  EXPECT_EQ(snap2.FindCounter("serve.queries")->value, 1u);
}

// ---- TdpmSelector through the engine --------------------------------------

CrowdDatabase TwoTopicDb() {
  CrowdDatabase db;
  db.AddWorker("db_expert_0");
  db.AddWorker("db_expert_1");
  db.AddWorker("math_expert_0");
  db.AddWorker("math_expert_1");
  const std::vector<std::string> db_tasks = {
      "btree index storage page", "index scan btree page buffer",
      "storage engine page btree", "buffer index page scan"};
  const std::vector<std::string> math_tasks = {
      "matrix calculus gradient algebra", "gradient algebra matrix integral",
      "integral calculus matrix algebra", "algebra gradient integral matrix"};
  for (const std::string& text : db_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w < 2 ? 5.0 : 1.0));
    }
  }
  for (const std::string& text : math_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w >= 2 ? 5.0 : 1.0));
    }
  }
  return db;
}

TdpmOptions SmallOptions() {
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 15;
  options.seed = 3;
  return options;
}

TEST(TdpmSelectorEngineTest, SelectTopKMatchesManualScan) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(SmallOptions());
  ASSERT_TRUE(selector.Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page", tokenizer, db.vocabulary());
  auto projected = selector.ProjectTask(task);
  ASSERT_TRUE(projected.ok());
  auto top = selector.SelectTopK(task, 4, {0, 1, 2, 3});
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 4u);
  for (const RankedWorker& rw : *top) {
    EXPECT_NEAR(rw.score,
                selector.WorkerSkills(rw.worker).Dot(projected->category),
                1e-9);
  }
}

TEST(TdpmSelectorEngineTest, RepeatedQueriesHitTheCache) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(SmallOptions());
  ASSERT_TRUE(selector.Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "matrix gradient", tokenizer, db.vocabulary());
  auto first = selector.SelectTopK(task, 2, {0, 1, 2, 3});
  auto second = selector.SelectTopK(task, 2, {0, 1, 2, 3});
  ASSERT_TRUE(first.ok() && second.ok());
  EXPECT_GE(selector.engine()->cache()->hits(), 1u);
  ASSERT_EQ(first->size(), second->size());
  for (size_t i = 0; i < first->size(); ++i) {
    EXPECT_EQ((*first)[i].worker, (*second)[i].worker);
    EXPECT_DOUBLE_EQ((*first)[i].score, (*second)[i].score);
  }
}

TEST(TdpmSelectorEngineTest, ObserveResolvedTaskPublishesNewSnapshot) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(SmallOptions());
  ASSERT_TRUE(selector.Train(db).ok());
  const uint64_t version_before = selector.engine()->snapshot()->version();
  const Vector skills_before = selector.WorkerSkills(2);

  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords task = BagOfWords::FromTextFrozen(
      "btree index page storage", tokenizer, db.vocabulary());
  // Worker 2 (a math expert) suddenly aces a db task.
  ASSERT_TRUE(selector.ObserveResolvedTask(task, {{2, 8.0}}).ok());

  EXPECT_EQ(selector.engine()->snapshot()->version(), version_before + 1);
  const Vector& skills_after = selector.WorkerSkills(2);
  double moved = 0.0;
  for (size_t d = 0; d < skills_after.size(); ++d) {
    moved += std::abs(skills_after[d] - skills_before[d]);
  }
  EXPECT_GT(moved, 0.0) << "posterior must absorb the observation";
  // The published snapshot row agrees with the refreshed posterior.
  const double* row = selector.engine()->snapshot()->RowPtr(2);
  for (size_t d = 0; d < skills_after.size(); ++d) {
    EXPECT_DOUBLE_EQ(row[d], skills_after[d]);
  }
  // Untouched workers keep their batch posterior in the new snapshot.
  const double* row0 = selector.engine()->snapshot()->RowPtr(0);
  const Vector& worker0 = selector.WorkerSkills(0);
  for (size_t d = 0; d < worker0.size(); ++d) {
    EXPECT_DOUBLE_EQ(row0[d], worker0[d]);
  }
}

TEST(TdpmSelectorEngineTest, ObserveResolvedTaskValidatesWorkers) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(SmallOptions());
  ASSERT_TRUE(selector.Train(db).ok());
  BagOfWords bag;
  bag.Add(0);
  EXPECT_TRUE(
      selector.ObserveResolvedTask(bag, {{99, 1.0}}).IsInvalidArgument());
  TdpmSelector untrained(SmallOptions());
  EXPECT_TRUE(
      untrained.ObserveResolvedTask(bag, {{0, 1.0}}).IsFailedPrecondition());
}

TEST(TdpmSelectorEngineTest, PublishWorkerPosteriorsSwapsSkills) {
  CrowdDatabase db = TwoTopicDb();
  TdpmSelector selector(SmallOptions());
  ASSERT_TRUE(selector.Train(db).ok());
  std::vector<WorkerPosterior> replacement(4);
  for (size_t w = 0; w < 4; ++w) {
    replacement[w].lambda = Vector(2, static_cast<double>(w));
    replacement[w].nu_sq = Vector(2, 0.5);
  }
  const uint64_t version_before = selector.engine()->snapshot()->version();
  selector.PublishWorkerPosteriors(replacement);
  EXPECT_GT(selector.engine()->snapshot()->version(), version_before);
  EXPECT_DOUBLE_EQ(selector.WorkerSkills(3)[0], 3.0);
  EXPECT_DOUBLE_EQ(selector.engine()->snapshot()->RowPtr(3)[0], 3.0);
}

}  // namespace
}  // namespace crowdselect::serve
