#include "baselines/lda_gibbs.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "baselines/tspm.h"
#include "util/logging.h"

namespace crowdselect {
namespace {

std::vector<LdaDocument> TwoTopicCorpus(size_t docs_per_topic, size_t vocab,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<LdaDocument> docs;
  const size_t half = vocab / 2;
  for (size_t topic = 0; topic < 2; ++topic) {
    for (size_t d = 0; d < docs_per_topic; ++d) {
      std::map<TermId, uint32_t> counts;
      for (int p = 0; p < 15; ++p) {
        const TermId t =
            static_cast<TermId>(topic * half + rng.UniformInt(half));
        ++counts[t];
      }
      docs.emplace_back(counts.begin(), counts.end());
    }
  }
  return docs;
}

GibbsLdaOptions FastOptions() {
  GibbsLdaOptions options;
  options.num_topics = 2;
  options.burn_in_sweeps = 80;
  options.sample_sweeps = 20;
  return options;
}

TEST(GibbsLdaTest, ValidatesInputs) {
  GibbsLdaOptions options = FastOptions();
  options.num_topics = 0;
  EXPECT_TRUE(GibbsLda::Fit({{{0, 1}}}, 5, options).status().IsInvalidArgument());
  options = FastOptions();
  options.alpha = 0.0;
  EXPECT_TRUE(GibbsLda::Fit({{{0, 1}}}, 5, options).status().IsInvalidArgument());
  options = FastOptions();
  EXPECT_TRUE(GibbsLda::Fit({}, 5, options).status().IsInvalidArgument());
  EXPECT_TRUE(
      GibbsLda::Fit({{{9, 1}}}, 5, options).status().IsInvalidArgument());
}

TEST(GibbsLdaTest, RecoversPlantedTopics) {
  auto docs = TwoTopicCorpus(20, 20, 2);
  auto model = GibbsLda::Fit(docs, 20, FastOptions());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  Vector d0 = model->DocTopics(0);
  Vector d1 = model->DocTopics(25);
  const size_t dom0 = d0[0] > d0[1] ? 0 : 1;
  const size_t dom1 = d1[0] > d1[1] ? 0 : 1;
  EXPECT_NE(dom0, dom1);
  EXPECT_GT(std::max(d0[0], d0[1]), 0.75);
}

TEST(GibbsLdaTest, EstimatesAreDistributions) {
  auto docs = TwoTopicCorpus(10, 20, 3);
  auto model = GibbsLda::Fit(docs, 20, FastOptions());
  ASSERT_TRUE(model.ok());
  for (size_t d = 0; d < model->num_documents(); ++d) {
    EXPECT_NEAR(model->DocTopics(d).Sum(), 1.0, 1e-9);
  }
  for (size_t t = 0; t < 2; ++t) {
    double row = 0.0;
    for (size_t v = 0; v < 20; ++v) {
      EXPECT_GE(model->topic_term()(t, v), 0.0);
      row += model->topic_term()(t, v);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(GibbsLdaTest, FoldInAlignsWithTraining) {
  auto docs = TwoTopicCorpus(20, 20, 4);
  auto model = GibbsLda::Fit(docs, 20, FastOptions());
  ASSERT_TRUE(model.ok());
  Rng rng(9);
  LdaDocument fresh = {{1, 4}, {5, 3}, {8, 2}};  // Topic-0 slice.
  Vector folded = model->FoldIn(fresh, &rng);
  Vector trained = model->DocTopics(0);
  EXPECT_EQ(folded[0] > folded[1], trained[0] > trained[1]);
  EXPECT_NEAR(folded.Sum(), 1.0, 1e-9);
}

TEST(GibbsLdaTest, FoldInEmptyIsUniform) {
  auto docs = TwoTopicCorpus(5, 20, 5);
  auto model = GibbsLda::Fit(docs, 20, FastOptions());
  ASSERT_TRUE(model.ok());
  Rng rng(10);
  Vector folded = model->FoldIn(LdaDocument{}, &rng);
  EXPECT_NEAR(folded[0], 0.5, 1e-9);
}

TEST(GibbsLdaTest, DeterministicForSeed) {
  auto docs = TwoTopicCorpus(8, 20, 6);
  auto m1 = GibbsLda::Fit(docs, 20, FastOptions());
  auto m2 = GibbsLda::Fit(docs, 20, FastOptions());
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_DOUBLE_EQ(m1->DocTopics(0)[0], m2->DocTopics(0)[0]);
}

TEST(GibbsLdaTest, AgreesWithVariationalOnEasyCorpus) {
  // Both estimators must discover the same planted split (up to topic
  // permutation).
  auto docs = TwoTopicCorpus(20, 20, 7);
  auto gibbs = GibbsLda::Fit(docs, 20, FastOptions());
  LdaOptions vb_options;
  vb_options.num_topics = 2;
  auto vb = Lda::Fit(docs, 20, vb_options);
  ASSERT_TRUE(gibbs.ok() && vb.ok());
  int agreements = 0;
  const size_t n = gibbs->num_documents();
  // Count how often the two models agree about "doc i and doc j share a
  // dominant topic" — permutation-invariant agreement.
  Rng rng(11);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t i = rng.UniformInt(n);
    const size_t j = rng.UniformInt(n);
    const Vector gi = gibbs->DocTopics(i), gj = gibbs->DocTopics(j);
    const Vector vi = vb->DocTopics(i), vj = vb->DocTopics(j);
    const bool gibbs_same = (gi[0] > gi[1]) == (gj[0] > gj[1]);
    const bool vb_same = (vi[0] > vi[1]) == (vj[0] > vj[1]);
    agreements += gibbs_same == vb_same ? 1 : 0;
  }
  EXPECT_GT(agreements, 180);
}

TEST(TspmGibbsBackendTest, TrainsAndRoutes) {
  CrowdDatabase db;
  db.AddWorker("db_expert");
  db.AddWorker("math_expert");
  const std::vector<std::string> db_tasks = {
      "btree index storage page", "index scan btree page buffer",
      "storage engine page btree", "buffer index page scan"};
  const std::vector<std::string> math_tasks = {
      "matrix calculus gradient algebra", "gradient algebra matrix integral",
      "integral calculus matrix algebra", "algebra gradient integral matrix"};
  for (const auto& text : db_tasks) {
    const TaskId t = db.AddTask(text);
    CS_CHECK_OK(db.Assign(0, t));
    CS_CHECK_OK(db.RecordFeedback(0, t, 5.0));
    CS_CHECK_OK(db.Assign(1, t));
    CS_CHECK_OK(db.RecordFeedback(1, t, 1.0));
  }
  for (const auto& text : math_tasks) {
    const TaskId t = db.AddTask(text);
    CS_CHECK_OK(db.Assign(0, t));
    CS_CHECK_OK(db.RecordFeedback(0, t, 1.0));
    CS_CHECK_OK(db.Assign(1, t));
    CS_CHECK_OK(db.RecordFeedback(1, t, 5.0));
  }

  TspmOptions options;
  options.lda.num_topics = 2;
  options.backend = LdaBackend::kGibbs;
  options.gibbs.burn_in_sweeps = 100;
  options.gibbs.sample_sweeps = 30;
  TspmSelector tspm(options);
  ASSERT_TRUE(tspm.Train(db).ok());
  EXPECT_EQ(tspm.Name(), "TSPM-Gibbs");

  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords probe = BagOfWords::FromTextFrozen(
      "btree page index", tokenizer, db.vocabulary());
  auto top = tspm.SelectTopK(probe, 1, {0, 1});
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0].worker, 0u);
}

}  // namespace
}  // namespace crowdselect
