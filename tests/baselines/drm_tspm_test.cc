#include <gtest/gtest.h>

#include "util/logging.h"

#include <cmath>

#include "baselines/drm.h"
#include "baselines/tspm.h"

namespace crowdselect {
namespace {

// Two-topic database with specialist workers (same construction as the
// TDPM selection test, so the baselines face the identical task).
CrowdDatabase TwoTopicDb() {
  CrowdDatabase db;
  db.AddWorker("db_expert_0");
  db.AddWorker("db_expert_1");
  db.AddWorker("math_expert_0");
  db.AddWorker("math_expert_1");
  const std::vector<std::string> db_tasks = {
      "btree index storage page", "index scan btree page buffer",
      "storage engine page btree", "buffer index page scan",
      "btree storage buffer engine", "index btree page storage"};
  const std::vector<std::string> math_tasks = {
      "matrix calculus gradient algebra", "gradient algebra matrix integral",
      "integral calculus matrix algebra", "algebra gradient integral matrix",
      "calculus integral gradient algebra", "matrix algebra calculus integral"};
  for (const auto& text : db_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w < 2 ? 5.0 : 1.0));
    }
  }
  for (const auto& text : math_tasks) {
    const TaskId t = db.AddTask(text);
    for (WorkerId w = 0; w < 4; ++w) {
      CS_CHECK_OK(db.Assign(w, t));
      CS_CHECK_OK(db.RecordFeedback(w, t, w >= 2 ? 5.0 : 1.0));
    }
  }
  return db;
}

template <typename Selector>
void ExpectTopicRouting(Selector& selector, const CrowdDatabase& db) {
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords db_task = BagOfWords::FromTextFrozen(
      "btree index page tuning", tokenizer, db.vocabulary());
  auto top = selector.SelectTopK(db_task, 1, {0, 1, 2, 3});
  ASSERT_TRUE(top.ok()) << top.status().ToString();
  EXPECT_LT((*top)[0].worker, 2u);

  const BagOfWords math_task = BagOfWords::FromTextFrozen(
      "matrix gradient integral", tokenizer, db.vocabulary());
  auto top_math = selector.SelectTopK(math_task, 1, {0, 1, 2, 3});
  ASSERT_TRUE(top_math.ok());
  EXPECT_GE((*top_math)[0].worker, 2u);
}

TEST(DrmTest, RoutesTasksToSpecialists) {
  CrowdDatabase db = TwoTopicDb();
  DrmOptions options;
  options.plsa.num_topics = 2;
  DrmSelector drm(options);
  ASSERT_TRUE(drm.Train(db).ok());
  EXPECT_EQ(drm.Name(), "DRM");
  ExpectTopicRouting(drm, db);
}

TEST(DrmTest, SkillsAreNormalizedMultinomials) {
  // The documented limitation the paper attacks: DRM skills sum to one,
  // so per-category values are not comparable across workers.
  CrowdDatabase db = TwoTopicDb();
  DrmOptions options;
  options.plsa.num_topics = 2;
  DrmSelector drm(options);
  ASSERT_TRUE(drm.Train(db).ok());
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_NEAR(drm.WorkerSkills(w).Sum(), 1.0, 1e-9);
  }
}

TEST(DrmTest, UntrainedAndUnknownCandidateFail) {
  DrmOptions options;
  options.plsa.num_topics = 2;
  DrmSelector drm(options);
  BagOfWords bag;
  EXPECT_TRUE(drm.SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
  CrowdDatabase db = TwoTopicDb();
  ASSERT_TRUE(drm.Train(db).ok());
  EXPECT_TRUE(drm.SelectTopK(bag, 1, {99}).status().IsInvalidArgument());
}

TEST(DrmTest, EmptyDatabaseFailsTraining) {
  CrowdDatabase db;
  db.AddWorker("w");
  DrmOptions options;
  options.plsa.num_topics = 2;
  DrmSelector drm(options);
  EXPECT_TRUE(drm.Train(db).IsFailedPrecondition());
}

TEST(TspmTest, RoutesTasksToSpecialists) {
  CrowdDatabase db = TwoTopicDb();
  TspmOptions options;
  options.lda.num_topics = 2;
  TspmSelector tspm(options);
  ASSERT_TRUE(tspm.Train(db).ok());
  EXPECT_EQ(tspm.Name(), "TSPM");
  ExpectTopicRouting(tspm, db);
}

TEST(TspmTest, SkillsAreNormalizedMultinomials) {
  CrowdDatabase db = TwoTopicDb();
  TspmOptions options;
  options.lda.num_topics = 2;
  TspmSelector tspm(options);
  ASSERT_TRUE(tspm.Train(db).ok());
  for (WorkerId w = 0; w < 4; ++w) {
    EXPECT_NEAR(tspm.WorkerSkills(w).Sum(), 1.0, 1e-9);
  }
}

TEST(TspmTest, UntrainedFails) {
  TspmOptions options;
  options.lda.num_topics = 2;
  TspmSelector tspm(options);
  BagOfWords bag;
  EXPECT_TRUE(tspm.SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
}

TEST(MultinomialLimitationTest, NormalizationHidesAbsoluteStrength) {
  // The paper's §1 motivating scenario, reproduced end to end: w_i has
  // skills (CS 0.9, Math 0.1), w_j (CS 0.8, Math 0.2) under a multinomial
  // model — but w_j actually solved *more CS tasks well*. A multinomial
  // model cannot represent "better at CS in absolute terms AND busier in
  // Math", while the unnormalized TDPM skill vector can.
  Vector multinomial_i{0.9, 0.1};
  Vector multinomial_j{0.8, 0.2};
  // Ground truth absolute strengths (e.g. mean feedback earned per
  // category): w_j dominates CS outright.
  Vector absolute_i{4.5, 0.5};
  Vector absolute_j{8.0, 2.0};
  Vector cs_task{1.0, 0.0};
  // Multinomial ranking picks w_i...
  EXPECT_GT(multinomial_i.Dot(cs_task), multinomial_j.Dot(cs_task));
  // ...but the unnormalized ground truth says w_j.
  EXPECT_LT(absolute_i.Dot(cs_task), absolute_j.Dot(cs_task));
}

}  // namespace
}  // namespace crowdselect
