#include "baselines/lda.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "util/rng.h"

namespace crowdselect {
namespace {

std::vector<LdaDocument> TwoTopicCorpus(size_t docs_per_topic, size_t vocab,
                                        uint64_t seed) {
  Rng rng(seed);
  std::vector<LdaDocument> docs;
  const size_t half = vocab / 2;
  for (size_t topic = 0; topic < 2; ++topic) {
    for (size_t d = 0; d < docs_per_topic; ++d) {
      std::map<TermId, uint32_t> counts;
      for (int p = 0; p < 15; ++p) {
        const TermId t =
            static_cast<TermId>(topic * half + rng.UniformInt(half));
        ++counts[t];
      }
      docs.emplace_back(counts.begin(), counts.end());
    }
  }
  return docs;
}

TEST(DigammaTest, MatchesKnownValues) {
  // digamma(1) = -gamma (Euler-Mascheroni).
  EXPECT_NEAR(Digamma(1.0), -0.5772156649, 1e-8);
  // digamma(0.5) = -gamma - 2 ln 2.
  EXPECT_NEAR(Digamma(0.5), -1.9635100260, 1e-8);
  // Recurrence: digamma(x+1) = digamma(x) + 1/x.
  for (double x : {0.3, 1.7, 5.5, 20.0}) {
    EXPECT_NEAR(Digamma(x + 1.0), Digamma(x) + 1.0 / x, 1e-10) << x;
  }
  // Large-argument asymptotics: digamma(x) ~ ln x - 1/(2x).
  EXPECT_NEAR(Digamma(100.0), std::log(100.0) - 0.005, 1e-5);
}

TEST(LdaTest, ValidatesInputs) {
  LdaOptions options;
  options.num_topics = 0;
  EXPECT_TRUE(Lda::Fit({{{0, 1}}}, 5, options).status().IsInvalidArgument());
  options.num_topics = 2;
  options.alpha = 0.0;
  EXPECT_TRUE(Lda::Fit({{{0, 1}}}, 5, options).status().IsInvalidArgument());
  options.alpha = 0.1;
  EXPECT_TRUE(Lda::Fit({}, 5, options).status().IsInvalidArgument());
  EXPECT_TRUE(Lda::Fit({{{9, 1}}}, 5, options).status().IsInvalidArgument());
}

TEST(LdaTest, BoundImprovesOverEm) {
  auto docs = TwoTopicCorpus(15, 20, 1);
  LdaOptions options;
  options.num_topics = 2;
  auto model = Lda::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  const auto& history = model->bound_history();
  ASSERT_GE(history.size(), 2u);
  EXPECT_GT(history.back(), history.front());
}

TEST(LdaTest, RecoversPlantedTopics) {
  auto docs = TwoTopicCorpus(20, 20, 2);
  LdaOptions options;
  options.num_topics = 2;
  auto model = Lda::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  Vector d0 = model->DocTopics(0);
  Vector d1 = model->DocTopics(25);
  const size_t dom0 = d0[0] > d0[1] ? 0 : 1;
  const size_t dom1 = d1[0] > d1[1] ? 0 : 1;
  EXPECT_NE(dom0, dom1);
  EXPECT_GT(std::max(d0[0], d0[1]), 0.8);
}

TEST(LdaTest, ThetaAndBetaAreDistributions) {
  auto docs = TwoTopicCorpus(10, 20, 3);
  LdaOptions options;
  options.num_topics = 3;
  auto model = Lda::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  for (size_t d = 0; d < model->num_documents(); ++d) {
    Vector theta = model->DocTopics(d);
    EXPECT_NEAR(theta.Sum(), 1.0, 1e-9);
  }
  for (size_t t = 0; t < 3; ++t) {
    double row = 0.0;
    for (size_t v = 0; v < 20; ++v) {
      EXPECT_GE(model->topic_term()(t, v), 0.0);
      row += model->topic_term()(t, v);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(LdaTest, FoldInAlignsWithTrainedDocs) {
  auto docs = TwoTopicCorpus(20, 20, 4);
  LdaOptions options;
  options.num_topics = 2;
  auto model = Lda::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  LdaDocument fresh = {{2, 3}, {5, 2}};
  Vector folded = model->FoldIn(fresh);
  Vector trained = model->DocTopics(0);
  EXPECT_EQ(folded[0] > folded[1], trained[0] > trained[1]);
  EXPECT_NEAR(folded.Sum(), 1.0, 1e-9);
}

TEST(LdaTest, FoldInEmptyGivesPriorProportions) {
  auto docs = TwoTopicCorpus(5, 20, 5);
  LdaOptions options;
  options.num_topics = 4;
  auto model = Lda::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  Vector folded = model->FoldIn(LdaDocument{});
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(folded[i], 0.25, 1e-9);
}

TEST(LdaTest, DeterministicForSeed) {
  auto docs = TwoTopicCorpus(10, 20, 6);
  LdaOptions options;
  options.num_topics = 2;
  auto m1 = Lda::Fit(docs, 20, options);
  auto m2 = Lda::Fit(docs, 20, options);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1->bound_history().back(), m2->bound_history().back());
}

}  // namespace
}  // namespace crowdselect
