#include "baselines/plsa.h"

#include <gtest/gtest.h>

#include <cmath>

#include "util/rng.h"

namespace crowdselect {
namespace {

// Two-topic corpus with disjoint vocabulary halves.
std::vector<PlsaDocument> TwoTopicCorpus(size_t docs_per_topic, size_t vocab,
                                         uint64_t seed) {
  Rng rng(seed);
  std::vector<PlsaDocument> docs;
  const size_t half = vocab / 2;
  for (size_t topic = 0; topic < 2; ++topic) {
    for (size_t d = 0; d < docs_per_topic; ++d) {
      std::map<TermId, uint32_t> counts;
      for (int p = 0; p < 15; ++p) {
        const TermId t =
            static_cast<TermId>(topic * half + rng.UniformInt(half));
        ++counts[t];
      }
      PlsaDocument doc(counts.begin(), counts.end());
      docs.push_back(std::move(doc));
    }
  }
  return docs;
}

TEST(PlsaTest, ValidatesInputs) {
  PlsaOptions options;
  options.num_topics = 0;
  EXPECT_TRUE(Plsa::Fit({{{0, 1}}}, 5, options).status().IsInvalidArgument());
  options.num_topics = 2;
  EXPECT_TRUE(Plsa::Fit({}, 5, options).status().IsInvalidArgument());
  EXPECT_TRUE(
      Plsa::Fit({{{9, 1}}}, 5, options).status().IsInvalidArgument());
  EXPECT_TRUE(
      Plsa::Fit({{{0, 0}}}, 5, options).status().IsInvalidArgument());
}

TEST(PlsaTest, LogLikelihoodIsNonDecreasing) {
  auto docs = TwoTopicCorpus(15, 20, 1);
  PlsaOptions options;
  options.num_topics = 2;
  options.max_iterations = 30;
  auto model = Plsa::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  const auto& history = model->loglik_history();
  ASSERT_GE(history.size(), 2u);
  for (size_t i = 1; i < history.size(); ++i) {
    EXPECT_GE(history[i], history[i - 1] - 1e-6 * std::fabs(history[i - 1]))
        << "EM iteration " << i;
  }
}

TEST(PlsaTest, RecoversPlantedTopics) {
  auto docs = TwoTopicCorpus(20, 20, 2);
  PlsaOptions options;
  options.num_topics = 2;
  auto model = Plsa::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  // Doc 0 (topic 0) and doc 25 (topic 1) should have opposite dominant
  // latent topics.
  Vector d0 = model->DocTopics(0);
  Vector d1 = model->DocTopics(25);
  const size_t dominant0 = d0[0] > d0[1] ? 0 : 1;
  const size_t dominant1 = d1[0] > d1[1] ? 0 : 1;
  EXPECT_NE(dominant0, dominant1);
  EXPECT_GT(std::max(d0[0], d0[1]), 0.85);
}

TEST(PlsaTest, DocTopicsAreDistributions) {
  auto docs = TwoTopicCorpus(10, 20, 3);
  PlsaOptions options;
  options.num_topics = 3;
  auto model = Plsa::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  for (size_t d = 0; d < model->num_documents(); ++d) {
    Vector topics = model->DocTopics(d);
    EXPECT_NEAR(topics.Sum(), 1.0, 1e-9);
    for (size_t i = 0; i < topics.size(); ++i) EXPECT_GE(topics[i], 0.0);
  }
  for (size_t t = 0; t < 3; ++t) {
    double row = 0.0;
    for (size_t v = 0; v < 20; ++v) row += model->topic_term()(t, v);
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
}

TEST(PlsaTest, FoldInMatchesTrainingTopicForSameContent) {
  auto docs = TwoTopicCorpus(20, 20, 4);
  PlsaOptions options;
  options.num_topics = 2;
  auto model = Plsa::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  // A fresh doc from topic 0's vocabulary half.
  PlsaDocument fresh = {{1, 3}, {4, 2}, {7, 1}};
  Vector folded = model->FoldIn(fresh);
  Vector trained = model->DocTopics(0);
  const size_t dom_folded = folded[0] > folded[1] ? 0 : 1;
  const size_t dom_trained = trained[0] > trained[1] ? 0 : 1;
  EXPECT_EQ(dom_folded, dom_trained);
}

TEST(PlsaTest, FoldInEmptyIsUniform) {
  auto docs = TwoTopicCorpus(5, 20, 5);
  PlsaOptions options;
  options.num_topics = 4;
  auto model = Plsa::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  Vector folded = model->FoldIn(PlsaDocument{});
  for (size_t i = 0; i < 4; ++i) EXPECT_NEAR(folded[i], 0.25, 1e-12);
}

TEST(PlsaTest, FoldInFromBagDropsUnknownTerms) {
  auto docs = TwoTopicCorpus(5, 20, 6);
  PlsaOptions options;
  options.num_topics = 2;
  auto model = Plsa::Fit(docs, 20, options);
  ASSERT_TRUE(model.ok());
  BagOfWords bag;
  bag.Add(2, 2);
  bag.Add(999, 5);  // Unknown.
  Vector folded = model->FoldIn(bag);
  EXPECT_NEAR(folded.Sum(), 1.0, 1e-9);
}

TEST(PlsaTest, DeterministicForSeed) {
  auto docs = TwoTopicCorpus(10, 20, 7);
  PlsaOptions options;
  options.num_topics = 2;
  auto m1 = Plsa::Fit(docs, 20, options);
  auto m2 = Plsa::Fit(docs, 20, options);
  ASSERT_TRUE(m1.ok() && m2.ok());
  EXPECT_EQ(m1->loglik_history().back(), m2->loglik_history().back());
}

}  // namespace
}  // namespace crowdselect
