#include "baselines/vsm.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace crowdselect {
namespace {

CrowdDatabase MakeDb() {
  CrowdDatabase db;
  db.AddWorker("dba");    // Resolves database tasks.
  db.AddWorker("mathy");  // Resolves math tasks.
  db.AddWorker("idle");   // Resolves nothing.
  const TaskId t0 = db.AddTask("btree index page storage");
  const TaskId t1 = db.AddTask("matrix gradient calculus");
  const TaskId t2 = db.AddTask("btree buffer page");
  CS_CHECK_OK(db.Assign(0, t0));
  CS_CHECK_OK(db.RecordFeedback(0, t0, 3.0));
  CS_CHECK_OK(db.Assign(0, t2));
  CS_CHECK_OK(db.RecordFeedback(0, t2, 2.0));
  CS_CHECK_OK(db.Assign(1, t1));
  CS_CHECK_OK(db.RecordFeedback(1, t1, 4.0));
  // An unscored assignment must NOT count toward the profile.
  CS_CHECK_OK(db.Assign(1, t0));
  return db;
}

TEST(VsmTest, ProfileIsUnionOfScoredTasks) {
  CrowdDatabase db = MakeDb();
  VsmSelector vsm;
  ASSERT_TRUE(vsm.Train(db).ok());
  const BagOfWords& profile = vsm.WorkerProfile(0);
  EXPECT_EQ(profile.Count(db.vocabulary().Lookup("btree")), 2u);
  EXPECT_EQ(profile.Count(db.vocabulary().Lookup("page")), 2u);
  // Worker 1's unscored t0 assignment leaves no trace.
  EXPECT_EQ(vsm.WorkerProfile(1).Count(db.vocabulary().Lookup("btree")), 0u);
  EXPECT_TRUE(vsm.WorkerProfile(2).empty());
}

TEST(VsmTest, RanksByTopicalSimilarity) {
  CrowdDatabase db = MakeDb();
  VsmSelector vsm;
  ASSERT_TRUE(vsm.Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords query = BagOfWords::FromTextFrozen(
      "how to tune a btree index", tokenizer, db.vocabulary());
  auto top = vsm.SelectTopK(query, 3, {0, 1, 2});
  ASSERT_TRUE(top.ok());
  ASSERT_EQ(top->size(), 3u);
  EXPECT_EQ((*top)[0].worker, 0u);
  EXPECT_GT((*top)[0].score, (*top)[1].score);
  // Idle worker has an empty profile -> similarity 0.
  EXPECT_DOUBLE_EQ((*top)[2].score, 0.0);
}

TEST(VsmTest, TfIdfVariantAlsoRanksDbaFirst) {
  CrowdDatabase db = MakeDb();
  VsmSelector vsm(VsmOptions{.use_tfidf = true});
  ASSERT_TRUE(vsm.Train(db).ok());
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  const BagOfWords query =
      BagOfWords::FromTextFrozen("btree page", tokenizer, db.vocabulary());
  auto top = vsm.SelectTopK(query, 1, {0, 1, 2});
  ASSERT_TRUE(top.ok());
  EXPECT_EQ((*top)[0].worker, 0u);
}

TEST(VsmTest, UntrainedFails) {
  VsmSelector vsm;
  BagOfWords bag;
  EXPECT_TRUE(vsm.SelectTopK(bag, 1, {0}).status().IsFailedPrecondition());
}

TEST(VsmTest, UnknownCandidateRejected) {
  CrowdDatabase db = MakeDb();
  VsmSelector vsm;
  ASSERT_TRUE(vsm.Train(db).ok());
  BagOfWords bag;
  EXPECT_TRUE(vsm.SelectTopK(bag, 1, {42}).status().IsInvalidArgument());
}

}  // namespace
}  // namespace crowdselect
