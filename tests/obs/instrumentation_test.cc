// End-to-end check that the instrumented training/selection paths emit
// the metric and span names DESIGN.md documents, with plausible values.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "crowddb/crowd_database.h"
#include "model/variational.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/rng.h"

namespace crowdselect {
namespace {

using obs::MetricsRegistry;
using obs::MetricsSnapshot;
using obs::SpanRecord;
using obs::TraceCollector;

// A small world with enough feedback for EM to run a few iterations.
CrowdDatabase MakeSmallWorld(uint64_t seed) {
  CrowdDatabase db;
  Rng rng(seed);
  const std::vector<std::string> topics = {
      "btree index page split", "matrix calculus gradient",
      "shard replica quorum", "lexer parser grammar"};
  for (int w = 0; w < 6; ++w) db.AddWorker("worker" + std::to_string(w));
  for (int j = 0; j < 12; ++j) {
    const TaskId task = db.AddTask(topics[j % topics.size()] + " question " +
                                   std::to_string(j));
    for (int a = 0; a < 3; ++a) {
      const WorkerId w = static_cast<WorkerId>((j + a * 2) % 6);
      CS_CHECK_OK(db.Assign(w, task));
      CS_CHECK_OK(db.RecordFeedback(
          w, task, std::max(0.0, rng.Normal(2.0, 1.0))));
    }
  }
  return db;
}

class InstrumentationTest : public ::testing::Test {
 protected:
  void SetUp() override {
    MetricsRegistry::Global().SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
    TraceCollector::Global().SetEnabled(true);
    TraceCollector::Global().SetCapacity(1u << 16);
    TraceCollector::Global().Clear();
  }
};

TEST_F(InstrumentationTest, FitEmitsDocumentedMetricsAndSpans) {
  const CrowdDatabase db = MakeSmallWorld(11);
  const TdpmTrainData data = TdpmTrainData::FromDatabase(db);
  ASSERT_TRUE(data.Validate().ok());

  TdpmOptions options;
  options.num_categories = 3;
  options.max_em_iterations = 3;
  options.seed = 5;
  auto fit = TdpmTrainer(options).Fit(data);
  ASSERT_TRUE(fit.ok()) << fit.status().ToString();
  const auto iterations = static_cast<uint64_t>(fit->iterations);
  ASSERT_GT(iterations, 0u);

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();

  // Counters of the EM loop.
  ASSERT_NE(snap.FindCounter("em.fits"), nullptr);
  EXPECT_EQ(snap.FindCounter("em.fits")->value, 1u);
  ASSERT_NE(snap.FindCounter("em.iterations"), nullptr);
  EXPECT_EQ(snap.FindCounter("em.iterations")->value, iterations);
  // The task E-step runs a fixed number of CG solves per task per
  // iteration (inner coordinate-ascent rounds), so the count is a whole
  // multiple of iterations * tasks.
  ASSERT_NE(snap.FindCounter("em.cg.solves"), nullptr);
  const uint64_t per_pass = iterations * data.tasks.size();
  EXPECT_GE(snap.FindCounter("em.cg.solves")->value, per_pass);
  EXPECT_EQ(snap.FindCounter("em.cg.solves")->value % per_pass, 0u);
  ASSERT_NE(snap.FindCounter("em.cg.iterations"), nullptr);
  EXPECT_GE(snap.FindCounter("em.cg.iterations")->value,
            snap.FindCounter("em.cg.solves")->value);

  // Per-phase span instruments: every phase ran once per iteration and
  // accumulated nonzero wall time.
  for (const char* phase :
       {"em.e_step.workers", "em.e_step.tasks", "em.m_step", "em.elbo",
        "em.iteration"}) {
    const std::string base = std::string("span.") + phase;
    const auto* calls = snap.FindCounter(base + ".calls");
    ASSERT_NE(calls, nullptr) << base;
    EXPECT_EQ(calls->value, iterations) << base;
    const auto* latency = snap.FindHistogram(base + ".us");
    ASSERT_NE(latency, nullptr) << base;
    EXPECT_EQ(latency->count, iterations) << base;
    EXPECT_GT(latency->sum, 0.0) << base;
  }

  // The ELBO gauge carries one history entry per iteration, matching the
  // fit result's own trace.
  const auto* elbo = snap.FindGauge("em.elbo");
  ASSERT_NE(elbo, nullptr);
  ASSERT_EQ(elbo->history.size(), fit->elbo_history.size());
  EXPECT_DOUBLE_EQ(elbo->value, fit->elbo_history.back());

  // The trace tree: em.fit is the root, iterations hang off it.
  const std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  uint64_t fit_id = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "em.fit") {
      EXPECT_EQ(s.parent, 0u);
      fit_id = s.id;
    }
  }
  ASSERT_NE(fit_id, 0u);
  uint64_t iteration_spans = 0;
  for (const SpanRecord& s : spans) {
    if (s.name == "em.iteration") {
      EXPECT_EQ(s.parent, fit_id);
      ++iteration_spans;
    }
  }
  EXPECT_EQ(iteration_spans, iterations);
}

TEST_F(InstrumentationTest, DisabledRegistryKeepsFitSilent) {
  MetricsRegistry::Global().SetEnabled(false);
  TraceCollector::Global().SetEnabled(false);

  const CrowdDatabase db = MakeSmallWorld(13);
  const TdpmTrainData data = TdpmTrainData::FromDatabase(db);
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 2;
  auto fit = TdpmTrainer(options).Fit(data);
  ASSERT_TRUE(fit.ok());

  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  const auto* fits = snap.FindCounter("em.fits");
  // The instrument may exist (registered by a prior run) but must not
  // have moved.
  if (fits != nullptr) {
    EXPECT_EQ(fits->value, 0u);
  }
  EXPECT_TRUE(TraceCollector::Global().Snapshot().empty());

  MetricsRegistry::Global().SetEnabled(true);
  TraceCollector::Global().SetEnabled(true);
}

}  // namespace
}  // namespace crowdselect
