#include "obs/flight_recorder.h"

#include <fcntl.h>
#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crowddb/jsonl.h"

namespace crowdselect::obs {
namespace {

// The recorder is a process-wide singleton shared with every other test
// in this binary (spans recorded by trace tests land in the same rings),
// so assertions filter by the name ids interned here instead of assuming
// an empty recorder.

std::vector<FlightEvent> EventsNamed(uint16_t name_id) {
  std::vector<FlightEvent> out;
  for (const FlightEvent& e : FlightRecorder::Global().Snapshot()) {
    if (e.name_id == name_id) out.push_back(e);
  }
  return out;
}

TEST(FlightRecorderTest, InternNameIsIdempotent) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint16_t a = rec.InternName("test.intern.alpha");
  const uint16_t b = rec.InternName("test.intern.alpha");
  EXPECT_EQ(a, b);
  EXPECT_NE(a, 0) << "real names never map to the reserved '?' id";
  EXPECT_STREQ(rec.NameOf(a), "test.intern.alpha");
  EXPECT_STREQ(rec.NameOf(0), "?");
}

TEST(FlightRecorderTest, InternSanitizesHostileNames) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint16_t id = rec.InternName("bad\"name\\with\x01junk");
  const std::string stored = rec.NameOf(id);
  // Dump emitters splice interned names into JSON without escaping, so
  // quote / backslash / control bytes must not survive interning.
  EXPECT_EQ(stored.find('"'), std::string::npos);
  EXPECT_EQ(stored.find('\\'), std::string::npos);
  for (char c : stored) EXPECT_GE(static_cast<unsigned char>(c), 0x20u);
}

TEST(FlightRecorderTest, RecordedEventsComeBackDecoded) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint16_t name = rec.InternName("test.decode");
  rec.Record(FlightEventType::kMark, name, 41, 42);
  rec.Record(FlightEventType::kWalAppend, name, 7, 99);
  const std::vector<FlightEvent> events = EventsNamed(name);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0].type, FlightEventType::kMark);
  EXPECT_EQ(events[0].a, 41u);
  EXPECT_EQ(events[0].b, 42u);
  EXPECT_EQ(events[1].type, FlightEventType::kWalAppend);
  EXPECT_EQ(events[1].a, 7u);
  EXPECT_LE(events[0].ts_ns, events[1].ts_ns) << "snapshot is time-ordered";
}

TEST(FlightRecorderTest, DisabledRecorderDropsEvents) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint16_t name = rec.InternName("test.disabled");
  rec.SetEnabled(false);
  rec.Record(FlightEventType::kMark, name, 1, 0);
  rec.SetEnabled(true);
  EXPECT_TRUE(EventsNamed(name).empty());
  rec.Record(FlightEventType::kMark, name, 2, 0);
  EXPECT_EQ(EventsNamed(name).size(), 1u);
}

TEST(FlightRecorderTest, RingOverwritesOldestBeyondCapacity) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint16_t name = rec.InternName("test.overwrite");
  // A fresh ring at the 16-event floor; events land on a new thread index.
  rec.SetCapacityPerThread(1);
  FlightRecorder::ResetThreadForTest();
  for (uint64_t i = 0; i < 100; ++i) {
    rec.Record(FlightEventType::kMark, name, i, 0);
  }
  rec.SetCapacityPerThread(4096);
  FlightRecorder::ResetThreadForTest();

  const std::vector<FlightEvent> events = EventsNamed(name);
  ASSERT_EQ(events.size(), 16u) << "ring retains exactly its capacity";
  // The retained tail is the newest 16 events, oldest-first overwritten.
  for (size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].a, 84u + i);
  }
}

TEST(FlightRecorderTest, ThreadsGetDistinctRingIndices) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint16_t name = rec.InternName("test.threads");
  rec.Record(FlightEventType::kMark, name, 1, 0);
  std::thread other(
      [&] { rec.Record(FlightEventType::kMark, name, 2, 0); });
  other.join();
  const std::vector<FlightEvent> events = EventsNamed(name);
  ASSERT_EQ(events.size(), 2u);
  EXPECT_NE(events[0].thread_index, events[1].thread_index);
}

TEST(FlightRecorderTest, TotalEventsCountsOverwrittenEvents) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint64_t before = rec.total_events();
  const uint16_t name = rec.InternName("test.total");
  rec.Record(FlightEventType::kMark, name);
  rec.Record(FlightEventType::kMark, name);
  EXPECT_EQ(rec.total_events(), before + 2);
}

TEST(FlightRecorderTest, DumpIsValidJsonlWithHeaderAndEvents) {
  FlightRecorder& rec = FlightRecorder::Global();
  const uint16_t name = rec.InternName("test.dump.jsonl");
  rec.Record(FlightEventType::kCheckpoint, name, 5, 1024);
  const std::string dump = rec.Dump("unit_test");

  std::istringstream lines(dump);
  std::string line;
  size_t line_no = 0;
  bool saw_event = false;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto object = jsonl::ParseObject(line);
    ASSERT_TRUE(object.ok()) << "line " << line_no << " is not flat JSON: "
                             << line;
    const auto type = object->find("type");
    ASSERT_NE(type, object->end()) << line;
    const std::string& kind = std::get<std::string>(type->second);
    if (line_no == 0) {
      EXPECT_EQ(kind, "flight_dump");
      EXPECT_EQ(std::get<std::string>(object->at("reason")), "unit_test");
      EXPECT_GE(std::get<double>(object->at("threads")), 1.0);
      EXPECT_GE(std::get<double>(object->at("total_events")), 1.0);
    } else {
      EXPECT_TRUE(kind == "open_spans" || kind == "event") << line;
    }
    if (kind == "event" &&
        std::get<std::string>(object->at("name")) == "test.dump.jsonl") {
      saw_event = true;
      EXPECT_EQ(std::get<std::string>(object->at("event")), "checkpoint");
      EXPECT_EQ(std::get<double>(object->at("a")), 5.0);
      EXPECT_EQ(std::get<double>(object->at("b")), 1024.0);
    }
    ++line_no;
  }
  EXPECT_GE(line_no, 3u) << "header + open_spans + at least one event";
  EXPECT_TRUE(saw_event);
}

TEST(FlightRecorderTest, WriteJsonlFileMatchesDump) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Record(FlightEventType::kMark, rec.InternName("test.dump.file"));
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_flight_test.jsonl")
          .string();
  ASSERT_TRUE(rec.WriteJsonlFile(path, "file_test").ok());
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_FALSE(buffer.str().empty());
  EXPECT_NE(buffer.str().find("\"reason\":\"file_test\""), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  std::filesystem::remove(path);
}

TEST(FlightRecorderTest, DumpHeaderHoldsMaxCrashHandlerStrings) {
  FlightRecorder& rec = FlightRecorder::Global();
  rec.Record(FlightEventType::kMark, rec.InternName("test.dump.header"));
  // Worst case the crash handler can pass: CrashState caps build_info
  // at 255 bytes and config at 1023 bytes. The header formatter must
  // hold both untruncated (the old 640-byte line buffer overflowed).
  const std::string build(255, 'b');
  const std::string config(1023, 'c');
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_flight_header.jsonl")
          .string();
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  ASSERT_GE(fd, 0);
  rec.DumpToFd(fd, "header_test", build.c_str(), config.c_str());
  ::close(fd);

  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  auto object = jsonl::ParseObject(header);
  ASSERT_TRUE(object.ok()) << header;
  EXPECT_EQ(std::get<std::string>(object->at("reason")), "header_test");
  EXPECT_EQ(std::get<std::string>(object->at("build")), build);
  EXPECT_EQ(std::get<std::string>(object->at("config")), config);
  std::filesystem::remove(path);
}

TEST(FlightRecorderTest, EventTypeNamesAreStable) {
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kSpanBegin),
               "span_begin");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kWalAppend),
               "wal_append");
  EXPECT_STREQ(FlightEventTypeName(FlightEventType::kStall), "stall");
}

}  // namespace
}  // namespace crowdselect::obs
