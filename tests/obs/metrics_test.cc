#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "obs/stats_reporter.h"
#include "util/thread_pool.h"

namespace crowdselect::obs {
namespace {

TEST(CounterTest, IncrementAndReset) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("events");
  EXPECT_EQ(c->Value(), 0u);
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(c->Value(), 42u);
  c->Reset();
  EXPECT_EQ(c->Value(), 0u);
}

TEST(CounterTest, SameNameReturnsSameInstrument) {
  MetricsRegistry registry;
  Counter* a = registry.GetCounter("x");
  Counter* b = registry.GetCounter("x");
  EXPECT_EQ(a, b);
  a->Increment();
  EXPECT_EQ(b->Value(), 1u);
}

TEST(CounterTest, ConcurrentIncrementsSumExactly) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("parallel");
  ThreadPool pool(4);
  constexpr size_t kIters = 100000;
  pool.ParallelFor(kIters, [&](size_t) { c->Increment(); });
  EXPECT_EQ(c->Value(), kIters);
}

TEST(CounterTest, ConcurrentRegistrationIsSafe) {
  MetricsRegistry registry;
  ThreadPool pool(4);
  pool.ParallelFor(1000, [&](size_t i) {
    registry.GetCounter("name" + std::to_string(i % 7))->Increment();
  });
  uint64_t total = 0;
  for (const auto& sample : registry.Snapshot().counters) total += sample.value;
  EXPECT_EQ(total, 1000u);
}

TEST(GaugeTest, SetKeepsHistory) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("elbo");
  g->Set(-10.0);
  g->Set(-5.0);
  g->Set(-4.5);
  EXPECT_DOUBLE_EQ(g->Value(), -4.5);
  EXPECT_EQ(g->History(), (std::vector<double>{-10.0, -5.0, -4.5}));
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_TRUE(g->History().empty());
}

TEST(GaugeTest, HistoryIsBounded) {
  MetricsRegistry registry;
  Gauge* g = registry.GetGauge("long_running");
  for (size_t i = 0; i < Gauge::kMaxHistory + 100; ++i) {
    g->Set(static_cast<double>(i));
  }
  const std::vector<double> history = g->History();
  ASSERT_EQ(history.size(), Gauge::kMaxHistory);
  // Oldest entries were discarded, the latest value survives.
  EXPECT_DOUBLE_EQ(history.back(), static_cast<double>(Gauge::kMaxHistory + 99));
}

TEST(HistogramTest, BucketBoundariesAreInclusiveUpperBounds) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("lat", {1.0, 2.0, 5.0});
  // Bucket i counts values <= bounds[i]; one overflow bucket above.
  h->Record(0.5);  // bucket 0
  h->Record(1.0);  // bucket 0 (boundary is inclusive)
  h->Record(1.5);  // bucket 1
  h->Record(2.0);  // bucket 1
  h->Record(5.0);  // bucket 2
  h->Record(7.0);  // overflow
  EXPECT_EQ(h->BucketCounts(), (std::vector<uint64_t>{2, 2, 1, 1}));
  EXPECT_EQ(h->TotalCount(), 6u);
  EXPECT_DOUBLE_EQ(h->Sum(), 17.0);
  EXPECT_DOUBLE_EQ(h->Min(), 0.5);
  EXPECT_DOUBLE_EQ(h->Max(), 7.0);
}

TEST(HistogramTest, EmptyHistogramReadsAsZero) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("empty", {1.0});
  EXPECT_EQ(h->TotalCount(), 0u);
  EXPECT_DOUBLE_EQ(h->Min(), 0.0);
  EXPECT_DOUBLE_EQ(h->Max(), 0.0);
}

TEST(HistogramTest, ConcurrentRecordsCountExactly) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("conc", {10.0, 100.0});
  ThreadPool pool(4);
  constexpr size_t kIters = 50000;
  pool.ParallelFor(kIters, [&](size_t i) {
    h->Record(static_cast<double>(i % 150));
  });
  EXPECT_EQ(h->TotalCount(), kIters);
  uint64_t bucket_total = 0;
  for (uint64_t b : h->BucketCounts()) bucket_total += b;
  EXPECT_EQ(bucket_total, kIters);
  EXPECT_DOUBLE_EQ(h->Min(), 0.0);
  EXPECT_DOUBLE_EQ(h->Max(), 149.0);
}

TEST(HistogramTest, QuantileInterpolatesWithinBuckets) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("q", {10.0, 20.0, 30.0});
  for (int v = 1; v <= 30; ++v) h->Record(static_cast<double>(v));
  const MetricsSnapshot snap = registry.Snapshot();
  const HistogramSample* sample = snap.FindHistogram("q");
  ASSERT_NE(sample, nullptr);
  EXPECT_NEAR(sample->Quantile(0.5), 15.0, 1.5);
  EXPECT_NEAR(sample->Quantile(1.0), 30.0, 1e-9);
  EXPECT_DOUBLE_EQ(sample->Mean(), 15.5);
}

TEST(RegistryTest, DisabledRegistryNoOpsAllInstruments) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  Gauge* g = registry.GetGauge("g");
  Histogram* h = registry.GetHistogram("h", {1.0});
  registry.SetEnabled(false);
  c->Increment();
  g->Set(3.0);
  h->Record(0.5);
  EXPECT_EQ(c->Value(), 0u);
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
  EXPECT_EQ(h->TotalCount(), 0u);
  registry.SetEnabled(true);
  c->Increment();
  EXPECT_EQ(c->Value(), 1u);
}

TEST(RegistryTest, ResetAllZeroesValuesButKeepsInstruments) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("c");
  c->Increment(5);
  registry.GetGauge("g")->Set(2.0);
  registry.GetHistogram("h")->Record(4.0);
  registry.ResetAll();
  EXPECT_EQ(c->Value(), 0u);  // Same pointer still valid.
  const MetricsSnapshot snap = registry.Snapshot();
  EXPECT_EQ(snap.counters.size(), 1u);
  EXPECT_EQ(snap.gauges.size(), 1u);
  EXPECT_EQ(snap.histograms.size(), 1u);
  EXPECT_EQ(snap.histograms[0].count, 0u);
}

TEST(SnapshotTest, FindLocatesInstrumentsByName) {
  MetricsRegistry registry;
  registry.GetCounter("a")->Increment(7);
  registry.GetGauge("b")->Set(1.5);
  registry.GetHistogram("c")->Record(3.0);
  const MetricsSnapshot snap = registry.Snapshot();
  ASSERT_NE(snap.FindCounter("a"), nullptr);
  EXPECT_EQ(snap.FindCounter("a")->value, 7u);
  ASSERT_NE(snap.FindGauge("b"), nullptr);
  EXPECT_DOUBLE_EQ(snap.FindGauge("b")->value, 1.5);
  ASSERT_NE(snap.FindHistogram("c"), nullptr);
  EXPECT_EQ(snap.FindHistogram("c")->count, 1u);
  EXPECT_EQ(snap.FindCounter("missing"), nullptr);
}

TEST(SnapshotTest, JsonRoundTripCarriesValues) {
  MetricsRegistry registry;
  registry.GetCounter("em.test.counter")->Increment(42);
  Gauge* g = registry.GetGauge("em.test.gauge");
  g->Set(-1.5);
  g->Set(2.25);
  registry.GetHistogram("em.test.histo", {1.0, 10.0})->Record(0.5);
  const std::string json = SnapshotToJson(registry.Snapshot());

  // Keys and exact values must survive serialization.
  EXPECT_NE(json.find("\"em.test.counter\": 42"), std::string::npos) << json;
  EXPECT_NE(json.find("\"em.test.gauge\""), std::string::npos);
  EXPECT_NE(json.find("2.25"), std::string::npos);
  EXPECT_NE(json.find("-1.5"), std::string::npos);  // History entry.
  EXPECT_NE(json.find("\"em.test.histo\""), std::string::npos);
  EXPECT_NE(json.find("\"count\": 1"), std::string::npos);

  // Structural sanity: balanced braces/brackets outside of strings.
  int braces = 0;
  int brackets = 0;
  bool in_string = false;
  for (size_t i = 0; i < json.size(); ++i) {
    const char ch = json[i];
    if (in_string) {
      if (ch == '\\') {
        ++i;
      } else if (ch == '"') {
        in_string = false;
      }
      continue;
    }
    if (ch == '"') in_string = true;
    if (ch == '{') ++braces;
    if (ch == '}') --braces;
    if (ch == '[') ++brackets;
    if (ch == ']') --brackets;
    EXPECT_GE(braces, 0);
    EXPECT_GE(brackets, 0);
  }
  EXPECT_EQ(braces, 0);
  EXPECT_EQ(brackets, 0);
  EXPECT_FALSE(in_string);
}

TEST(BucketLaddersTest, AreAscending) {
  for (const auto* bounds : {&LatencyBucketBounds(), &ScoreBucketBounds()}) {
    ASSERT_FALSE(bounds->empty());
    for (size_t i = 1; i < bounds->size(); ++i) {
      EXPECT_LT((*bounds)[i - 1], (*bounds)[i]);
    }
  }
}

}  // namespace
}  // namespace crowdselect::obs
