#include "obs/timeseries.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "crowddb/jsonl.h"
#include "obs/metrics.h"

namespace crowdselect::obs {
namespace {

TEST(TimeSeriesStoreTest, AppendAndReadBack) {
  TimeSeriesStore store;
  EXPECT_TRUE(store.Append("a", 0.0, 1.0));
  EXPECT_TRUE(store.Append("a", 1.0, 2.0));
  EXPECT_TRUE(store.Append("b", 0.0, 9.0));

  EXPECT_EQ(store.num_series(), 2u);
  EXPECT_EQ(store.total_points(), 3u);
  const std::vector<std::string> names = store.SeriesNames();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");

  const std::vector<TimeSeriesPoint> a = store.Points("a");
  ASSERT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0].t, 0.0);
  EXPECT_EQ(a[0].v, 1.0);
  EXPECT_EQ(a[1].t, 1.0);
  EXPECT_EQ(a[1].v, 2.0);
  EXPECT_TRUE(store.Points("unknown").empty());
}

TEST(TimeSeriesStoreTest, RingOverwritesOldestOnceFull) {
  TimeSeriesStore store;
  store.set_capacity_per_series(4);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(store.Append("s", static_cast<double>(i), 10.0 * i));
  }
  const std::vector<TimeSeriesPoint> points = store.Points("s");
  ASSERT_EQ(points.size(), 4u);
  // Oldest-first: the retained window is t = 6..9.
  for (size_t i = 0; i < points.size(); ++i) {
    EXPECT_EQ(points[i].t, static_cast<double>(6 + i));
    EXPECT_EQ(points[i].v, 10.0 * (6 + i));
  }
  EXPECT_EQ(store.total_points(), 10u);
}

TEST(TimeSeriesStoreTest, CapacityIsPerSeriesAtCreationTime) {
  TimeSeriesStore store;
  store.set_capacity_per_series(2);
  store.Append("small", 0.0, 0.0);
  store.set_capacity_per_series(8);
  store.Append("big", 0.0, 0.0);
  for (int i = 1; i < 8; ++i) {
    store.Append("small", static_cast<double>(i), 0.0);
    store.Append("big", static_cast<double>(i), 0.0);
  }
  // "small" keeps the ring it was created with; "big" gets the new cap.
  EXPECT_EQ(store.Points("small").size(), 2u);
  EXPECT_EQ(store.Points("big").size(), 8u);
}

TEST(TimeSeriesStoreTest, MaxSeriesCapDropsNewSeries) {
  TimeSeriesStore store;
  store.set_max_series(2);
  EXPECT_TRUE(store.Append("a", 0.0, 0.0));
  EXPECT_TRUE(store.Append("b", 0.0, 0.0));
  EXPECT_FALSE(store.Append("c", 0.0, 0.0));
  // Existing series keep accepting appends.
  EXPECT_TRUE(store.Append("a", 1.0, 1.0));
  EXPECT_EQ(store.num_series(), 2u);
}

TEST(TimeSeriesStoreTest, SampleRegistryCapturesCountersAndGauges) {
  MetricsRegistry registry;
  registry.GetCounter("serve.queries")->Increment(7);
  registry.GetGauge("pool.size")->Set(3.0);
  // Metrics in the store's own namespace are skipped so a sampling tick
  // never feeds back into itself.
  registry.GetCounter("timeseries.samples")->Increment();

  TimeSeriesStore store;
  const size_t appended = store.SampleRegistry(5.0, &registry);
  EXPECT_EQ(appended, 2u);

  const std::vector<TimeSeriesPoint> queries = store.Points("serve.queries");
  ASSERT_EQ(queries.size(), 1u);
  EXPECT_EQ(queries[0].t, 5.0);
  EXPECT_EQ(queries[0].v, 7.0);
  ASSERT_EQ(store.Points("pool.size").size(), 1u);
  EXPECT_EQ(store.Points("pool.size")[0].v, 3.0);
  EXPECT_TRUE(store.Points("timeseries.samples").empty());
}

TEST(TimeSeriesStoreTest, ToJsonlIsFlatAndParsesBack) {
  TimeSeriesStore store;
  store.Append("quality.m.rmse.mean", 0.0, 0.25);
  store.Append("quality.m.rmse.mean", 1.0, 0.5);
  store.Append("alert.firing", 1.0, 1.0);

  const std::string dump = store.ToJsonl();
  std::istringstream lines(dump);
  std::string line;
  size_t parsed = 0;
  std::vector<std::string> series_seen;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto object = jsonl::ParseObject(line);
    ASSERT_TRUE(object.ok()) << line;
    ASSERT_TRUE(object->count("series"));
    ASSERT_TRUE(object->count("t"));
    ASSERT_TRUE(object->count("v"));
    series_seen.push_back(std::get<std::string>((*object)["series"]));
    ++parsed;
  }
  EXPECT_EQ(parsed, 3u);
  // Series in name order, points oldest first within a series.
  ASSERT_EQ(series_seen.size(), 3u);
  EXPECT_EQ(series_seen[0], "alert.firing");
  EXPECT_EQ(series_seen[1], "quality.m.rmse.mean");
  EXPECT_EQ(series_seen[2], "quality.m.rmse.mean");
}

TEST(TimeSeriesStoreTest, ClearDropsPointsButKeepsSettings) {
  TimeSeriesStore store;
  store.set_capacity_per_series(4);
  store.Append("a", 0.0, 0.0);
  store.Clear();
  EXPECT_EQ(store.num_series(), 0u);
  EXPECT_EQ(store.total_points(), 0u);
  for (int i = 0; i < 10; ++i) {
    store.Append("a", static_cast<double>(i), 0.0);
  }
  EXPECT_EQ(store.Points("a").size(), 4u);
}

TEST(TimeSeriesStoreTest, BackgroundSamplingStartsAndStopsCleanly) {
  MetricsRegistry registry;
  registry.GetGauge("g")->Set(1.0);
  TimeSeriesStore store;
  store.StartSampling(0.01, &registry);
  EXPECT_TRUE(store.sampling_running());
  // Idempotent while running.
  store.StartSampling(0.01, &registry);
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (store.total_points() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  store.StopSampling();
  EXPECT_FALSE(store.sampling_running());
  EXPECT_GT(store.total_points(), 0u);
  store.StopSampling();  // Idempotent when already stopped.
}

TEST(TimeSeriesStoreTest, GlobalIsASingleton) {
  EXPECT_EQ(&TimeSeriesStore::Global(), &TimeSeriesStore::Global());
}

}  // namespace
}  // namespace crowdselect::obs
