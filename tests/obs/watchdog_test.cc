#include "obs/watchdog.h"

#include <gtest/gtest.h>

#include <chrono>
#include <thread>

#include "obs/flight_recorder.h"

namespace crowdselect::obs {
namespace {

TEST(WatchdogTest, ArmIsANoOpWhenStopped) {
  Watchdog dog;
  EXPECT_FALSE(dog.running());
  EXPECT_EQ(dog.Arm("test.stopped.op", 10.0), 0u);
  dog.Disarm(0);  // Must be safe.
  EXPECT_EQ(dog.armed(), 0u);
}

TEST(WatchdogTest, StartStopIsCleanAndIdempotent) {
  Watchdog dog;
  dog.Start(/*tick_ms=*/5.0);
  EXPECT_TRUE(dog.running());
  dog.Start(5.0);  // Idempotent while running.
  EXPECT_TRUE(dog.running());
  dog.Stop();
  EXPECT_FALSE(dog.running());
  dog.Stop();  // Idempotent when stopped.
}

TEST(WatchdogTest, OverrunFiresExactlyOneStall) {
  Watchdog dog;
  // A huge tick keeps the background thread out of the way so ScanOnce
  // drives detection deterministically.
  dog.Start(/*tick_ms=*/60000.0);
  const uint64_t token = dog.Arm("test.stall.op", /*deadline_ms=*/0.01);
  ASSERT_NE(token, 0u);
  EXPECT_EQ(dog.armed(), 1u);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dog.ScanOnce();
  EXPECT_EQ(dog.stalls(), 1u);
  dog.ScanOnce();
  EXPECT_EQ(dog.stalls(), 1u) << "an operation fires at most once";
  dog.Disarm(token);
  EXPECT_EQ(dog.armed(), 0u);
  dog.Stop();
}

TEST(WatchdogTest, StallEmitsFlightRecorderEvent) {
  FlightRecorder& rec = FlightRecorder::Global();
  Watchdog dog;
  dog.Start(/*tick_ms=*/60000.0);
  const uint64_t token = dog.Arm("test.stall.flight", 0.01);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dog.ScanOnce();
  dog.Disarm(token);
  dog.Stop();
  const uint16_t name = rec.InternName("test.stall.flight");
  bool found = false;
  for (const FlightEvent& e : rec.Snapshot()) {
    if (e.name_id == name && e.type == FlightEventType::kStall) {
      found = true;
      EXPECT_GT(e.a, 0u) << "overrun microseconds";
    }
  }
  EXPECT_TRUE(found);
}

TEST(WatchdogTest, DisarmBeforeDeadlinePreventsStall) {
  Watchdog dog;
  dog.Start(/*tick_ms=*/60000.0);
  const uint64_t token = dog.Arm("test.ok.op", /*deadline_ms=*/60000.0);
  ASSERT_NE(token, 0u);
  dog.Disarm(token);
  dog.ScanOnce();
  EXPECT_EQ(dog.stalls(), 0u);
  dog.Stop();
}

TEST(WatchdogTest, BackgroundThreadDetectsStalls) {
  Watchdog dog;
  dog.Start(/*tick_ms=*/2.0);
  const uint64_t token = dog.Arm("test.bg.op", /*deadline_ms=*/1.0);
  ASSERT_NE(token, 0u);
  // The scanner should report the overrun within a few ticks.
  for (int i = 0; i < 500 && dog.stalls() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(dog.stalls(), 1u);
  dog.Disarm(token);
  dog.Stop();
}

TEST(WatchdogTest, ScopedDeadlineArmsAndDisarms) {
  Watchdog& global = Watchdog::Global();
  // Global() stopped: the scope must be a no-op.
  {
    ScopedDeadline deadline("test.scoped.noop", 1000.0);
    EXPECT_EQ(global.armed(), 0u);
  }
  global.Start(/*tick_ms=*/60000.0);
  {
    ScopedDeadline deadline("test.scoped.armed", 60000.0);
    EXPECT_EQ(global.armed(), 1u);
  }
  EXPECT_EQ(global.armed(), 0u);
  {
    ScopedDeadline disabled("test.scoped.disabled", 0.0);
    EXPECT_EQ(global.armed(), 0u) << "deadline <= 0 disables arming";
  }
  global.Stop();
}

TEST(WatchdogTest, RestartAfterStopDetectsStalls) {
  Watchdog dog;
  dog.Start(5.0);
  dog.Stop();
  dog.Start(/*tick_ms=*/60000.0);
  EXPECT_TRUE(dog.running());
  const uint64_t token = dog.Arm("test.restart.op", /*deadline_ms=*/0.01);
  ASSERT_NE(token, 0u) << "a restarted watchdog must accept arms";
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  dog.ScanOnce();
  EXPECT_EQ(dog.stalls(), 1u);
  dog.Disarm(token);
  dog.Stop();
}

TEST(WatchdogTest, ConcurrentStartStopLeavesConsistentState) {
  Watchdog dog;
  // Hammer the lifecycle from two threads; a Start racing a Stop's
  // join must never leave the watchdog wedged in a stopped state.
  auto churn = [&dog] {
    for (int i = 0; i < 50; ++i) {
      dog.Start(/*tick_ms=*/1.0);
      dog.Stop();
    }
  };
  std::thread a(churn);
  std::thread b(churn);
  a.join();
  b.join();
  dog.Start(/*tick_ms=*/60000.0);
  EXPECT_TRUE(dog.running());
  dog.Stop();
  EXPECT_FALSE(dog.running());
}

TEST(WatchdogTest, GlobalIsASingleton) {
  EXPECT_EQ(&Watchdog::Global(), &Watchdog::Global());
}

}  // namespace
}  // namespace crowdselect::obs
