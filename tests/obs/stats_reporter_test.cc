#include "obs/stats_reporter.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace crowdselect::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class StatsReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().SetEnabled(true);
    TraceCollector::Global().Clear();
  }
};

TEST_F(StatsReporterTest, ToJsonCarriesEverySection) {
  MetricsRegistry registry;
  registry.GetCounter("reporter.counter")->Increment(3);
  registry.GetGauge("reporter.gauge")->Set(1.25);
  registry.GetHistogram("reporter.histo", {1.0, 2.0})->Record(1.5);
  { CS_SPAN(span, "reporter.span"); }

  const StatsReporter reporter(&registry);
  const std::string json = reporter.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"reporter.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("1.25"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"reporter.span\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\""), std::string::npos);
}

TEST_F(StatsReporterTest, WriteJsonFileRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("reporter.file_counter")->Increment(9);
  const StatsReporter reporter(&registry);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_stats_test.json").string();
  ASSERT_TRUE(reporter.WriteJsonFile(path).ok());
  const std::string contents = ReadFile(path);
  EXPECT_EQ(contents, reporter.ToJson());
  EXPECT_NE(contents.find("\"reporter.file_counter\": 9"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(StatsReporterTest, WriteToUnwritablePathFails) {
  const StatsReporter reporter;
  EXPECT_FALSE(
      reporter.WriteJsonFile("/nonexistent_dir_cs/stats.json").ok());
  EXPECT_FALSE(
      reporter.WriteChromeTraceFile("/nonexistent_dir_cs/trace.json").ok());
}

TEST_F(StatsReporterTest, ChromeTraceFileContainsSpans) {
  { CS_SPAN(span, "reporter.chrome"); }
  const StatsReporter reporter;
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_trace_test.json").string();
  ASSERT_TRUE(reporter.WriteChromeTraceFile(path).ok());
  const std::string contents = ReadFile(path);
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("\"reporter.chrome\""), std::string::npos);
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace crowdselect::obs
