#include "obs/stats_reporter.h"

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <utility>

#include "obs/alerts.h"
#include "obs/json_escape.h"
#include "obs/metric_help.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace crowdselect::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

class StatsReporterTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().SetEnabled(true);
    TraceCollector::Global().Clear();
  }
};

TEST_F(StatsReporterTest, ToJsonCarriesEverySection) {
  MetricsRegistry registry;
  registry.GetCounter("reporter.counter")->Increment(3);
  registry.GetGauge("reporter.gauge")->Set(1.25);
  registry.GetHistogram("reporter.histo", {1.0, 2.0})->Record(1.5);
  { CS_SPAN(span, "reporter.span"); }

  const StatsReporter reporter(&registry);
  const std::string json = reporter.ToJson();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"reporter.counter\": 3"), std::string::npos);
  EXPECT_NE(json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(json.find("1.25"), std::string::npos);
  EXPECT_NE(json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(json.find("\"spans\""), std::string::npos);
  EXPECT_NE(json.find("\"reporter.span\""), std::string::npos);
  EXPECT_NE(json.find("\"dropped_spans\""), std::string::npos);
}

TEST_F(StatsReporterTest, WriteJsonFileRoundTrips) {
  MetricsRegistry registry;
  registry.GetCounter("reporter.file_counter")->Increment(9);
  const StatsReporter reporter(&registry);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_stats_test.json").string();
  ASSERT_TRUE(reporter.WriteJsonFile(path).ok());
  const std::string contents = ReadFile(path);
  EXPECT_EQ(contents, reporter.ToJson());
  EXPECT_NE(contents.find("\"reporter.file_counter\": 9"), std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(StatsReporterTest, WriteToUnwritablePathFails) {
  const StatsReporter reporter;
  EXPECT_FALSE(
      reporter.WriteJsonFile("/nonexistent_dir_cs/stats.json").ok());
  EXPECT_FALSE(
      reporter.WriteChromeTraceFile("/nonexistent_dir_cs/trace.json").ok());
}

TEST_F(StatsReporterTest, ChromeTraceFileContainsSpans) {
  { CS_SPAN(span, "reporter.chrome"); }
  const StatsReporter reporter;
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_trace_test.json").string();
  ASSERT_TRUE(reporter.WriteChromeTraceFile(path).ok());
  const std::string contents = ReadFile(path);
  EXPECT_NE(contents.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(contents.find("\"reporter.chrome\""), std::string::npos);
  std::filesystem::remove(path);
}

// ---- String escaping -------------------------------------------------------

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain.name"), "plain.name");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("line1\nline2\ttab"), "line1\\nline2\\ttab");
  EXPECT_EQ(JsonEscape(std::string("\r\b\f")), "\\r\\b\\f");
  EXPECT_EQ(JsonEscape(std::string(1, '\x01')), "\\u0001");
  EXPECT_EQ(JsonQuote("a\"b"), "\"a\\\"b\"");
}

TEST_F(StatsReporterTest, JsonEscapesHostileMetricNames) {
  MetricsRegistry registry;
  const std::string hostile = "evil\"name\\with\nnewline";
  registry.GetCounter(hostile)->Increment(1);
  registry.GetGauge(hostile + ".g")->Set(2.0);
  registry.GetHistogram(hostile + ".h", {1.0})->Record(0.5);
  const StatsReporter reporter(&registry);
  const std::string json = reporter.ToJson();
  // The escaped form appears; the raw quote-in-name form must not.
  EXPECT_NE(json.find("evil\\\"name\\\\with\\nnewline"), std::string::npos);
  EXPECT_EQ(json.find("evil\"name"), std::string::npos);
  EXPECT_EQ(json.find('\n' + std::string("newline")), std::string::npos);
}

TEST_F(StatsReporterTest, ChromeTraceEscapesHostileSpanNames) {
  {
    ScopedSpan span("span\"with\\quote\nand newline");
  }
  const StatsReporter reporter;
  const std::string trace = reporter.ToChromeTraceJson();
  EXPECT_NE(trace.find("span\\\"with\\\\quote\\nand newline"),
            std::string::npos);
  // No raw control characters inside the emitted JSON string.
  EXPECT_EQ(trace.find("with\\quote\n"), std::string::npos);
}

// ---- Prometheus exposition -------------------------------------------------

TEST_F(StatsReporterTest, PrometheusExposesAllInstrumentKinds) {
  MetricsRegistry registry;
  registry.GetCounter("prom.requests")->Increment(7);
  registry.GetGauge("prom.depth")->Set(3.5);
  auto* histo = registry.GetHistogram("prom.lat", {1.0, 10.0});
  histo->Record(0.5);
  histo->Record(5.0);
  histo->Record(100.0);
  const StatsReporter reporter(&registry);
  const std::string text = reporter.ToPrometheusText();

  EXPECT_NE(text.find("# TYPE crowdselect_prom_requests counter"),
            std::string::npos);
  EXPECT_NE(text.find("crowdselect_prom_requests 7"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crowdselect_prom_depth gauge"),
            std::string::npos);
  EXPECT_NE(text.find("crowdselect_prom_depth 3.5"), std::string::npos);
  EXPECT_NE(text.find("# TYPE crowdselect_prom_lat histogram"),
            std::string::npos);
  // Buckets are cumulative and end with +Inf == _count.
  EXPECT_NE(text.find("crowdselect_prom_lat_bucket{le=\"1\"} 1"),
            std::string::npos);
  EXPECT_NE(text.find("crowdselect_prom_lat_bucket{le=\"10\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("crowdselect_prom_lat_bucket{le=\"+Inf\"} 3"),
            std::string::npos);
  EXPECT_NE(text.find("crowdselect_prom_lat_count 3"), std::string::npos);
  EXPECT_NE(text.find("crowdselect_prom_lat_sum 105.5"), std::string::npos);
}

TEST_F(StatsReporterTest, PrometheusSanitizesIllegalNameCharacters) {
  MetricsRegistry registry;
  registry.GetCounter("serve.cache.hits")->Increment(2);
  registry.GetCounter("weird-name with spaces")->Increment(1);
  const StatsReporter reporter(&registry);
  const std::string text = reporter.ToPrometheusText();
  EXPECT_NE(text.find("crowdselect_serve_cache_hits 2"), std::string::npos);
  EXPECT_NE(text.find("crowdselect_weird_name_with_spaces 1"),
            std::string::npos);
  // No raw dots or spaces survive in metric names.
  EXPECT_EQ(text.find("serve.cache.hits"), std::string::npos);
}

TEST_F(StatsReporterTest, PrometheusEmitsHelpFromTheMetricRegistry) {
  MetricsRegistry registry;
  registry.GetCounter("serve.queries")->Increment(1);
  registry.GetGauge("quality.tdpm.rmse.p95")->Set(0.1);
  registry.GetCounter("made.up.metric")->Increment(1);
  const StatsReporter reporter(&registry);
  const std::string text = reporter.ToPrometheusText();
  // Registered metric: the registry's description column verbatim.
  EXPECT_NE(text.find("# HELP crowdselect_serve_queries Queries served by "
                      "the selection engine."),
            std::string::npos);
  // quality.* resolves through the wildcard prefix entry.
  EXPECT_NE(text.find("# HELP crowdselect_quality_tdpm_rmse_p95 Online "
                      "shadow-evaluation signals"),
            std::string::npos);
  // Unknown metric: generic fallback, never an empty HELP.
  EXPECT_NE(
      text.find(
          "# HELP crowdselect_made_up_metric crowdselect metric "
          "made.up.metric (no description registered)."),
      std::string::npos);
  EXPECT_EQ(text.find("# HELP crowdselect_made_up_metric \n"),
            std::string::npos);
  EXPECT_GT(MetricHelpTableSize(), 0u);
}

TEST_F(StatsReporterTest, ToJsonCarriesTheAlertsSection) {
  AlertEngine::Global().Clear();
  MetricsRegistry registry;
  registry.GetGauge("alerts.test.signal")->Set(9.0);
  const StatsReporter reporter(&registry);
  EXPECT_NE(reporter.ToJson().find("\"alerts\""), std::string::npos);
  EXPECT_NE(reporter.ToJson().find("\"firing\": 0"), std::string::npos);

  AlertRule rule;
  rule.name = "json_section";
  rule.metric = "alerts.test.signal";
  rule.threshold = 5.0;
  ASSERT_TRUE(AlertEngine::Global().AddRule(rule).ok());
  AlertEngine::Global().EvaluateAll(&registry, /*series=*/nullptr);
  const std::string json = reporter.ToJson();
  EXPECT_NE(json.find("\"firing\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"name\": \"json_section\""), std::string::npos);
  EXPECT_NE(json.find("\"state\": \"firing\""), std::string::npos);
  EXPECT_NE(json.find("\"metric\": \"alerts.test.signal\""),
            std::string::npos);
  AlertEngine::Global().Clear();
}

TEST_F(StatsReporterTest, PrometheusRendersLoadedAlertRulesAsAFamily) {
  AlertEngine::Global().Clear();
  MetricsRegistry registry;
  const StatsReporter reporter(&registry);
  // No rules loaded: the family is absent entirely.
  EXPECT_EQ(reporter.ToPrometheusText().find("crowdselect_alert_state"),
            std::string::npos);

  registry.GetGauge("alerts.prom.signal")->Set(1.0);
  AlertRule firing;
  firing.name = "prom_firing";
  firing.metric = "alerts.prom.signal";
  firing.threshold = 0.5;
  AlertRule ok;
  ok.name = "prom_ok";
  ok.metric = "alerts.prom.signal";
  ok.threshold = 100.0;
  ASSERT_TRUE(AlertEngine::Global().AddRule(firing).ok());
  ASSERT_TRUE(AlertEngine::Global().AddRule(ok).ok());
  AlertEngine::Global().EvaluateAll(&registry, /*series=*/nullptr);

  const std::string text = reporter.ToPrometheusText();
  EXPECT_NE(text.find("# TYPE crowdselect_alert_state gauge"),
            std::string::npos);
  EXPECT_NE(text.find("crowdselect_alert_state{rule=\"prom_firing\"} 2"),
            std::string::npos);
  EXPECT_NE(text.find("crowdselect_alert_state{rule=\"prom_ok\"} 0"),
            std::string::npos);
  AlertEngine::Global().Clear();
}

TEST_F(StatsReporterTest, WritePrometheusFileIsAtomic) {
  MetricsRegistry registry;
  registry.GetCounter("prom.file")->Increment(4);
  const StatsReporter reporter(&registry);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_prom_test.prom").string();
  ASSERT_TRUE(reporter.WritePrometheusFile(path).ok());
  EXPECT_EQ(ReadFile(path), reporter.ToPrometheusText());
  // The temp staging file does not linger.
  EXPECT_FALSE(std::filesystem::exists(path + ".tmp"));
  EXPECT_FALSE(
      reporter.WritePrometheusFile("/nonexistent_dir_cs/out.prom").ok());
  std::filesystem::remove(path);
}

TEST_F(StatsReporterTest, PeriodicExporterWritesAndStops) {
  MetricsRegistry registry;
  registry.GetCounter("prom.periodic")->Increment(1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_prom_periodic.prom")
          .string();
  {
    PeriodicStatsExporter exporter(path, /*interval_seconds=*/0.01,
                                   StatsReporter(&registry));
    // Stop() writes a final snapshot even if no interval elapsed.
    ASSERT_TRUE(exporter.Stop().ok());
    ASSERT_TRUE(exporter.Stop().ok()) << "Stop must be idempotent";
    EXPECT_GE(exporter.writes(), 1u);
  }
  EXPECT_NE(ReadFile(path).find("crowdselect_prom_periodic 1"),
            std::string::npos);
  std::filesystem::remove(path);
}

TEST_F(StatsReporterTest, PeriodicExporterCreateRejectsBadIntervals) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_prom_create.prom")
          .string();
  for (const double interval : {0.0, -1.0, std::nan("")}) {
    auto created = PeriodicStatsExporter::Create(path, interval);
    ASSERT_FALSE(created.ok()) << "interval " << interval;
    EXPECT_TRUE(created.status().IsInvalidArgument())
        << created.status().ToString();
  }
  EXPECT_TRUE(
      PeriodicStatsExporter::Create("", 1.0).status().IsInvalidArgument());

  auto created = PeriodicStatsExporter::Create(path, 0.01);
  ASSERT_TRUE(created.ok()) << created.status().ToString();
  ASSERT_NE(*created, nullptr);
  EXPECT_TRUE((*created)->Stop().ok());
  std::filesystem::remove(path);
}

TEST_F(StatsReporterTest, PeriodicExporterDestroyedDuringFirstWrite) {
  // Races destruction against the very first background write: the
  // destructor must join the thread before members die (TSan enforces
  // the absence of a use-after-free / data race here).
  MetricsRegistry registry;
  registry.GetCounter("prom.race")->Increment(1);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_prom_race.prom")
          .string();
  for (int i = 0; i < 50; ++i) {
    PeriodicStatsExporter exporter(path, /*interval_seconds=*/1e-4,
                                   StatsReporter(&registry));
    // Destroyed immediately — often exactly while Loop() is mid-write.
  }
  std::filesystem::remove(path);
}

TEST_F(StatsReporterTest, PeriodicExporterReadersNeverSeePartialFiles) {
  // The exporter replaces the file via tmp + rename, so a concurrent
  // reader sees either no file or one complete exposition — never a
  // truncated prefix.
  MetricsRegistry registry;
  registry.GetCounter("prom.atomic")->Increment(7);
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_prom_atomic.prom")
          .string();
  std::filesystem::remove(path);
  {
    PeriodicStatsExporter exporter(path, /*interval_seconds=*/1e-4,
                                   StatsReporter(&registry));
    size_t reads = 0;
    while (reads < 200) {
      const std::string content = ReadFile(path);
      if (content.empty()) continue;  // Not yet renamed into place.
      ++reads;
      EXPECT_NE(content.find("# TYPE crowdselect_prom_atomic counter"),
                std::string::npos)
          << "partial exposition visible to a reader";
      EXPECT_EQ(content.back(), '\n');
    }
  }
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace crowdselect::obs
