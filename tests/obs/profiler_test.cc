#include "obs/profiler.h"

#include <gtest/gtest.h>

#include <chrono>
#include <sstream>
#include <string>

namespace crowdselect::obs {
namespace {

// Burns CPU (ITIMER_PROF counts CPU time, not wall time) until the
// profiler has retained at least `want` samples or ~3s of work elapsed.
void BurnCpuUntilSampled(uint64_t want) {
  volatile double sink = 0.0;
  const auto start = std::chrono::steady_clock::now();
  while (SamplingProfiler::Global().samples() < want &&
         std::chrono::steady_clock::now() - start <
             std::chrono::seconds(3)) {
    for (int i = 0; i < 100000; ++i) {
      sink = sink + static_cast<double>(i) * 1e-9;
    }
  }
}

TEST(ProfilerTest, RejectsSubMillisecondishIntervals) {
  const Status st = SamplingProfiler::Global().Start(/*interval_us=*/50.0);
  // Unsupported platforms report FailedPrecondition before validation.
  if (st.IsFailedPrecondition()) GTEST_SKIP() << st.ToString();
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(ProfilerTest, StopWithoutStartFails) {
  EXPECT_FALSE(SamplingProfiler::Global().Stop().ok());
}

TEST(ProfilerTest, StartCollectsSamplesAndStopDisarms) {
  SamplingProfiler& profiler = SamplingProfiler::Global();
  const Status st = profiler.Start(/*interval_us=*/500.0);
  if (st.IsFailedPrecondition()) GTEST_SKIP() << st.ToString();
  ASSERT_TRUE(st.ok()) << st.ToString();
  EXPECT_TRUE(profiler.running());
  EXPECT_TRUE(profiler.Start(500.0).IsAlreadyExists());

  BurnCpuUntilSampled(1);
  ASSERT_TRUE(profiler.Stop().ok());
  EXPECT_FALSE(profiler.running());
  EXPECT_GE(profiler.samples(), 1u);

  const uint64_t settled = profiler.samples();
  BurnCpuUntilSampled(settled + 1);
  EXPECT_EQ(profiler.samples(), settled)
      << "the timer must be disarmed after Stop";

  // Collapsed output: every line is "frame;frame;... count".
  const std::string collapsed = profiler.CollapsedStacks();
  ASSERT_FALSE(collapsed.empty());
  std::istringstream lines(collapsed);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    const size_t space = line.rfind(' ');
    ASSERT_NE(space, std::string::npos) << line;
    ASSERT_LT(space + 1, line.size()) << line;
    for (size_t i = space + 1; i < line.size(); ++i) {
      EXPECT_TRUE(line[i] >= '0' && line[i] <= '9') << line;
    }
    // Frames must not contain the separators the format reserves.
    EXPECT_EQ(line.substr(0, space).find(' '), std::string::npos) << line;
  }

  // A fresh Start resets the store.
  ASSERT_TRUE(profiler.Start(500.0).ok());
  ASSERT_TRUE(profiler.Stop().ok());
}

}  // namespace
}  // namespace crowdselect::obs
