#include "obs/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace crowdselect::obs {
namespace {

// The collector and registry are process-wide singletons; every test
// starts from a clean, enabled state.
class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    TraceCollector::Global().SetEnabled(true);
    TraceCollector::Global().SetCapacity(1u << 16);
    TraceCollector::Global().Clear();
    MetricsRegistry::Global().SetEnabled(true);
    MetricsRegistry::Global().ResetAll();
  }
};

const SpanRecord* FindSpan(const std::vector<SpanRecord>& spans,
                           const std::string& name) {
  const auto it = std::find_if(
      spans.begin(), spans.end(),
      [&](const SpanRecord& s) { return s.name == name; });
  return it == spans.end() ? nullptr : &*it;
}

TEST_F(TraceTest, RecordsCompletedSpan) {
  { CS_SPAN(span, "unit.single"); }
  const std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  const SpanRecord* span = FindSpan(spans, "unit.single");
  ASSERT_NE(span, nullptr);
  EXPECT_GT(span->id, 0u);
  EXPECT_EQ(span->parent, 0u);
  EXPECT_EQ(span->depth, 0u);
  EXPECT_GE(span->duration_us, 0.0);
}

TEST_F(TraceTest, NestedSpansChainParentIds) {
  {
    CS_SPAN(outer, "unit.outer");
    {
      CS_SPAN(middle, "unit.middle");
      { CS_SPAN(inner, "unit.inner"); }
    }
  }
  const std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  const SpanRecord* outer = FindSpan(spans, "unit.outer");
  const SpanRecord* middle = FindSpan(spans, "unit.middle");
  const SpanRecord* inner = FindSpan(spans, "unit.inner");
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(middle, nullptr);
  ASSERT_NE(inner, nullptr);
  EXPECT_EQ(outer->parent, 0u);
  EXPECT_EQ(middle->parent, outer->id);
  EXPECT_EQ(inner->parent, middle->id);
  EXPECT_EQ(outer->depth, 0u);
  EXPECT_EQ(middle->depth, 1u);
  EXPECT_EQ(inner->depth, 2u);
  // Snapshot is ordered by start time: outer opened first.
  EXPECT_LE(outer->start_us, middle->start_us);
  EXPECT_LE(middle->start_us, inner->start_us);
  // A nested span cannot outlast its parent.
  EXPECT_LE(inner->duration_us, outer->duration_us);
}

TEST_F(TraceTest, SiblingSpansShareParent) {
  {
    CS_SPAN(parent, "unit.parent");
    { CS_SPAN(a, "unit.a"); }
    { CS_SPAN(b, "unit.b"); }
  }
  const std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  const SpanRecord* parent = FindSpan(spans, "unit.parent");
  const SpanRecord* a = FindSpan(spans, "unit.a");
  const SpanRecord* b = FindSpan(spans, "unit.b");
  ASSERT_NE(parent, nullptr);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->parent, parent->id);
  EXPECT_EQ(b->parent, parent->id);
  EXPECT_EQ(a->depth, 1u);
  EXPECT_EQ(b->depth, 1u);
}

TEST_F(TraceTest, ThreadsGetDistinctIndices) {
  { CS_SPAN(main_span, "unit.main_thread"); }
  std::thread other([] { CS_SPAN(span, "unit.other_thread"); });
  other.join();
  const std::vector<SpanRecord> spans = TraceCollector::Global().Snapshot();
  const SpanRecord* main_span = FindSpan(spans, "unit.main_thread");
  const SpanRecord* other_span = FindSpan(spans, "unit.other_thread");
  ASSERT_NE(main_span, nullptr);
  ASSERT_NE(other_span, nullptr);  // Survived thread exit (retired buffer).
  EXPECT_NE(main_span->thread_index, other_span->thread_index);
  // Spans on different threads never parent each other.
  EXPECT_EQ(other_span->parent, 0u);
}

TEST_F(TraceTest, CapacityCapDropsAndCounts) {
  TraceCollector::Global().SetCapacity(3);
  for (int i = 0; i < 10; ++i) {
    CS_SPAN(span, "unit.capped");
  }
  EXPECT_EQ(TraceCollector::Global().Snapshot().size(), 3u);
  EXPECT_EQ(TraceCollector::Global().dropped(), 7u);
  // Metrics still count every span even when the trace was dropped.
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_NE(snap.FindCounter("span.unit.capped.calls"), nullptr);
  EXPECT_EQ(snap.FindCounter("span.unit.capped.calls")->value, 10u);
  TraceCollector::Global().Clear();
  EXPECT_EQ(TraceCollector::Global().dropped(), 0u);
}

TEST_F(TraceTest, DisabledCollectorRecordsNothing) {
  TraceCollector::Global().SetEnabled(false);
  { CS_SPAN(span, "unit.disabled"); }
  EXPECT_EQ(FindSpan(TraceCollector::Global().Snapshot(), "unit.disabled"),
            nullptr);
  // Metrics are governed by the registry toggle, not the collector's.
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_NE(snap.FindCounter("span.unit.disabled.calls"), nullptr);
  EXPECT_EQ(snap.FindCounter("span.unit.disabled.calls")->value, 1u);
}

TEST_F(TraceTest, SpanMeterFeedsPreResolvedInstruments) {
  static SpanMeter meter("unit.metered");
  for (int i = 0; i < 4; ++i) {
    ScopedSpan span(meter);
  }
  EXPECT_EQ(meter.calls->Value(), 4u);
  EXPECT_EQ(meter.latency_us->TotalCount(), 4u);
  const MetricsSnapshot snap = MetricsRegistry::Global().Snapshot();
  ASSERT_NE(snap.FindHistogram("span.unit.metered.us"), nullptr);
  EXPECT_EQ(snap.FindHistogram("span.unit.metered.us")->count, 4u);
}

TEST_F(TraceTest, ChromeTraceJsonCarriesSpans) {
  {
    CS_SPAN(outer, "unit.chrome_outer");
    { CS_SPAN(inner, "unit.chrome_inner"); }
  }
  const std::string json =
      SpansToChromeTraceJson(TraceCollector::Global().Snapshot());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.chrome_outer\""), std::string::npos);
  EXPECT_NE(json.find("\"unit.chrome_inner\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_EQ(SpansToChromeTraceJson({}),
            "{\"traceEvents\":[],\"displayTimeUnit\":\"ms\"}");
}

}  // namespace
}  // namespace crowdselect::obs
