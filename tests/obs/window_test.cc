#include "obs/window.h"

#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "obs/metrics.h"

namespace crowdselect::obs {
namespace {

const std::vector<double> kBounds = {1.0, 10.0, 100.0, 1000.0};

double GaugeValue(MetricsRegistry& registry, const std::string& name) {
  return registry.GetGauge(name)->Value();
}

TEST(WindowedHistogramTest, GaugesRefreshOnlyOnRotation) {
  MetricsRegistry registry;
  WindowedHistogram window("rot", 3, kBounds, &registry);
  window.Record(50.0);
  // The open window is not published: gauges stay at their initial zero
  // until the window closes.
  EXPECT_EQ(GaugeValue(registry, "slo.rot.window_count"), 0.0);
  EXPECT_EQ(window.Merged().count, 0u);
  EXPECT_EQ(window.Merged(/*include_open=*/true).count, 1u);

  window.Rotate();
  EXPECT_EQ(window.rotations(), 1u);
  EXPECT_EQ(GaugeValue(registry, "slo.rot.window_count"), 1.0);
  EXPECT_GT(GaugeValue(registry, "slo.rot.p50"), 0.0);
}

TEST(WindowedHistogramTest, SingleSampleQuantilesLandInItsBucket) {
  MetricsRegistry registry;
  WindowedHistogram window("single", 4, kBounds, &registry);
  window.Record(42.0);
  window.Rotate();
  // With one sample every quantile is a bucket-interpolated estimate
  // inside that sample's bucket (10, 100].
  for (const char* g : {"slo.single.p50", "slo.single.p95",
                        "slo.single.p99"}) {
    const double v = GaugeValue(registry, g);
    EXPECT_GT(v, 10.0) << g;
    EXPECT_LE(v, 100.0) << g;
  }
  EXPECT_EQ(GaugeValue(registry, "slo.single.window_count"), 1.0);
}

TEST(WindowedHistogramTest, QuantilesAreMonotone) {
  MetricsRegistry registry;
  WindowedHistogram window("mono", 2, kBounds, &registry);
  for (int i = 1; i <= 200; ++i) window.Record(static_cast<double>(i * 3));
  window.Rotate();
  const double p50 = GaugeValue(registry, "slo.mono.p50");
  const double p95 = GaugeValue(registry, "slo.mono.p95");
  const double p99 = GaugeValue(registry, "slo.mono.p99");
  EXPECT_GT(p50, 0.0);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
}

TEST(WindowedHistogramTest, EmptyRotationsAgeOutOldSamples) {
  MetricsRegistry registry;
  WindowedHistogram window("age", 3, kBounds, &registry);
  window.Record(500.0);
  window.Rotate();
  EXPECT_GT(GaugeValue(registry, "slo.age.p99"), 100.0);

  // Idle rotations: the spike window survives until it falls off the
  // 3-window ring, then the gauges report "no traffic" as zero.
  window.Rotate();
  window.Rotate();
  EXPECT_EQ(GaugeValue(registry, "slo.age.window_count"), 1.0);
  window.Rotate();
  EXPECT_EQ(GaugeValue(registry, "slo.age.window_count"), 0.0);
  EXPECT_EQ(GaugeValue(registry, "slo.age.p50"), 0.0);
  EXPECT_EQ(GaugeValue(registry, "slo.age.p95"), 0.0);
  EXPECT_EQ(GaugeValue(registry, "slo.age.p99"), 0.0);
}

TEST(WindowedHistogramTest, RingKeepsOnlyLastNWindows) {
  MetricsRegistry registry;
  WindowedHistogram window("ring", 2, kBounds, &registry);
  window.Record(900.0);  // Slow era.
  window.Rotate();
  window.Record(2.0);  // Fast era, twice: pushes the slow window out.
  window.Rotate();
  window.Record(2.0);
  window.Rotate();
  const HistogramSample merged = window.Merged();
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.max, 2.0);
  EXPECT_LT(GaugeValue(registry, "slo.ring.p99"), 10.0);
}

TEST(WindowedHistogramTest, MergedAggregatesAcrossRetainedWindows) {
  MetricsRegistry registry;
  WindowedHistogram window("merge", 4, kBounds, &registry);
  window.Record(5.0);
  window.Rotate();
  window.Record(50.0);
  window.Rotate();
  const HistogramSample merged = window.Merged();
  EXPECT_EQ(merged.count, 2u);
  EXPECT_EQ(merged.min, 5.0);
  EXPECT_EQ(merged.max, 50.0);
  EXPECT_DOUBLE_EQ(merged.sum, 55.0);
}

TEST(WindowedHistogramTest, MeanAndSampleCountGaugesTrackTheNewestWindow) {
  MetricsRegistry registry;
  WindowedHistogram window("counted", 3, kBounds, &registry);
  window.Record(10.0);
  window.Record(30.0);
  window.Rotate();
  EXPECT_DOUBLE_EQ(GaugeValue(registry, "slo.counted.mean"), 20.0);
  // `samples` is the newest closed window's own count — the per-window
  // denominator a percentile gauge should be read against — while
  // `window_count` is the merged count across all retained windows.
  EXPECT_EQ(GaugeValue(registry, "slo.counted.samples"), 2.0);
  EXPECT_EQ(GaugeValue(registry, "slo.counted.window_count"), 2.0);

  window.Record(100.0);
  window.Rotate();
  EXPECT_EQ(GaugeValue(registry, "slo.counted.samples"), 1.0);
  EXPECT_EQ(GaugeValue(registry, "slo.counted.window_count"), 3.0);
}

TEST(WindowedHistogramTest, CustomGaugePrefixReplacesSlo) {
  MetricsRegistry registry;
  WindowedHistogram window("quality.m.rmse", 2, kBounds, &registry,
                           /*gauge_prefix=*/"");
  window.Record(1.0);
  window.Rotate();
  // Gauges land at the bare name — no "slo." in front.
  EXPECT_EQ(GaugeValue(registry, "quality.m.rmse.window_count"), 1.0);
  EXPECT_EQ(GaugeValue(registry, "quality.m.rmse.samples"), 1.0);
  const MetricsSnapshot snapshot = registry.Snapshot();
  for (const auto& gauge : snapshot.gauges) {
    EXPECT_EQ(gauge.name.rfind("slo.", 0), std::string::npos) << gauge.name;
  }
}

TEST(SloTrackerTest, LazilyCreatesEndpointsAndRotatesInLockstep) {
  SloTracker tracker;
  EXPECT_TRUE(tracker.Endpoints().empty());
  tracker.Record("test.alpha", 10.0);
  tracker.Record("test.beta", 20.0);
  EXPECT_EQ(tracker.Endpoints(),
            (std::vector<std::string>{"test.alpha", "test.beta"}));
  tracker.RotateAll();
  EXPECT_EQ(tracker.GetWindow("test.alpha")->rotations(), 1u);
  EXPECT_EQ(tracker.GetWindow("test.beta")->rotations(), 1u);
  EXPECT_EQ(tracker.GetWindow("test.alpha")->Merged().count, 1u);
}

TEST(SloTrackerTest, DefaultNumWindowsAppliesToNewEndpoints) {
  SloTracker tracker;
  EXPECT_EQ(tracker.default_num_windows(), 6u);
  tracker.Record("test.before", 1.0);
  tracker.set_default_num_windows(2);
  tracker.Record("test.after", 1.0);
  EXPECT_EQ(tracker.GetWindow("test.before")->num_windows(), 6u);
  EXPECT_EQ(tracker.GetWindow("test.after")->num_windows(), 2u);
}

TEST(SloTrackerTest, GlobalIsASingleton) {
  EXPECT_EQ(&SloTracker::Global(), &SloTracker::Global());
}

TEST(SloTrackerTest, BackgroundRotationAdvancesWindowsAndStopsCleanly) {
  SloTracker tracker;
  tracker.Record("test.bg", 5.0);
  EXPECT_FALSE(tracker.background_rotation_running());
  tracker.StartBackgroundRotation(/*interval_seconds=*/0.002);
  tracker.StartBackgroundRotation(0.002);  // Idempotent while running.
  EXPECT_TRUE(tracker.background_rotation_running());

  WindowedHistogram* window = tracker.GetWindow("test.bg");
  for (int i = 0; i < 2000 && window->rotations() < 2; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(window->rotations(), 2u);

  tracker.StopBackgroundRotation();
  EXPECT_FALSE(tracker.background_rotation_running());
  const uint64_t settled = window->rotations();
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_EQ(window->rotations(), settled)
      << "no rotations after a clean stop";
  tracker.StopBackgroundRotation();  // Idempotent when stopped.
}

TEST(SloTrackerTest, DestructorJoinsTheRotationThread) {
  // Destruction while the rotation thread sleeps must not hang or leak
  // the thread (TSan would flag a detached racer).
  SloTracker tracker;
  tracker.Record("test.dtor", 1.0);
  tracker.StartBackgroundRotation(/*interval_seconds=*/30.0);
  EXPECT_TRUE(tracker.background_rotation_running());
}

TEST(SloTrackerTest, NonPositiveRotationIntervalIsClamped) {
  SloTracker tracker;
  tracker.StartBackgroundRotation(/*interval_seconds=*/-1.0);
  EXPECT_TRUE(tracker.background_rotation_running());
  tracker.StopBackgroundRotation();
}

}  // namespace
}  // namespace crowdselect::obs
