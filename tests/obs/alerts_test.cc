#include "obs/alerts.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "obs/metrics.h"
#include "obs/timeseries.h"

namespace crowdselect::obs {
namespace {

TEST(ParseAlertRulesTest, ParsesThresholdRateCommentsAndHoldDown) {
  const std::string text =
      "# latency page\n"
      "alert slow_selects when slo.select.p99 > 250 for 3\n"
      "\n"
      "alert quality_drop when quality.tdpm.top1_agreement.mean < 0.4\n"
      "alert error_burst when rate(serve.errors, 10) > 0.5 for 2  # trailing\n";
  auto rules = ParseAlertRules(text);
  ASSERT_TRUE(rules.ok()) << rules.status().ToString();
  ASSERT_EQ(rules->size(), 3u);

  EXPECT_EQ((*rules)[0].name, "slow_selects");
  EXPECT_EQ((*rules)[0].metric, "slo.select.p99");
  EXPECT_EQ((*rules)[0].kind, AlertRule::Kind::kAbove);
  EXPECT_EQ((*rules)[0].threshold, 250.0);
  EXPECT_EQ((*rules)[0].hold_down, 3u);

  EXPECT_EQ((*rules)[1].kind, AlertRule::Kind::kBelow);
  EXPECT_EQ((*rules)[1].hold_down, 1u);

  EXPECT_EQ((*rules)[2].metric, "serve.errors");
  EXPECT_EQ((*rules)[2].kind, AlertRule::Kind::kRateAbove);
  EXPECT_EQ((*rules)[2].rate_window, 10u);
  EXPECT_EQ((*rules)[2].hold_down, 2u);
}

TEST(ParseAlertRulesTest, SyntaxErrorsCarryTheLineNumber) {
  auto missing_when = ParseAlertRules("alert x slo.p99 > 1\n");
  ASSERT_FALSE(missing_when.ok());
  EXPECT_NE(missing_when.status().ToString().find("line 1"), std::string::npos);

  auto bad_op = ParseAlertRules("# ok\nalert x when m >= 1\n");
  ASSERT_FALSE(bad_op.ok());
  EXPECT_NE(bad_op.status().ToString().find("line 2"), std::string::npos);

  EXPECT_FALSE(ParseAlertRules("alert x when m > nope\n").ok());
  EXPECT_FALSE(ParseAlertRules("alert x when rate(m) > 1\n").ok());
  EXPECT_FALSE(ParseAlertRules("alert x when rate(m, 1) > 1\n").ok());
  EXPECT_FALSE(ParseAlertRules("alert x when m > 1 for\n").ok());
  EXPECT_FALSE(ParseAlertRules("alert x when m > 1 whenever\n").ok());
}

TEST(AlertEngineTest, AddRuleValidatesAndRejectsDuplicates) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "r";
  rule.metric = "m";
  EXPECT_TRUE(engine.AddRule(rule).ok());
  EXPECT_TRUE(engine.AddRule(rule).IsAlreadyExists());

  AlertRule nameless;
  nameless.metric = "m";
  EXPECT_TRUE(engine.AddRule(nameless).IsInvalidArgument());
  AlertRule metricless;
  metricless.name = "r2";
  EXPECT_TRUE(engine.AddRule(metricless).IsInvalidArgument());
  EXPECT_EQ(engine.NumRules(), 1u);
}

TEST(AlertEngineTest, HoldDownGatesOkPendingFiring) {
  MetricsRegistry registry;
  TimeSeriesStore series;
  AlertEngine engine;
  AlertRule rule;
  rule.name = "hot";
  rule.metric = "g";
  rule.kind = AlertRule::Kind::kAbove;
  rule.threshold = 10.0;
  rule.hold_down = 2;
  ASSERT_TRUE(engine.AddRule(rule).ok());

  Gauge* gauge = registry.GetGauge("g");
  gauge->Set(5.0);
  EXPECT_EQ(engine.EvaluateAll(&registry, &series), 0u);
  EXPECT_EQ(engine.Snapshot()[0].state, AlertState::kOk);

  gauge->Set(15.0);  // First breach: pending, not firing.
  EXPECT_EQ(engine.EvaluateAll(&registry, &series), 0u);
  {
    const AlertStatus status = engine.Snapshot()[0];
    EXPECT_EQ(status.state, AlertState::kPending);
    EXPECT_EQ(status.breach_streak, 1u);
    EXPECT_TRUE(status.last_value_known);
    EXPECT_EQ(status.last_value, 15.0);
  }

  EXPECT_EQ(engine.EvaluateAll(&registry, &series), 1u);  // Second: firing.
  EXPECT_EQ(engine.Snapshot()[0].state, AlertState::kFiring);
  EXPECT_EQ(engine.FiringCount(), 1u);
  EXPECT_EQ(registry.GetGauge("alert.firing")->Value(), 1.0);

  gauge->Set(5.0);  // Recovery drops straight back to ok.
  EXPECT_EQ(engine.EvaluateAll(&registry, &series), 0u);
  const AlertStatus recovered = engine.Snapshot()[0];
  EXPECT_EQ(recovered.state, AlertState::kOk);
  EXPECT_EQ(recovered.breach_streak, 0u);
  // ok -> pending -> firing -> ok.
  EXPECT_EQ(recovered.transitions, 3u);
  EXPECT_EQ(engine.evaluations(), 4u);
  EXPECT_EQ(registry.GetCounter("alert.evaluations")->Value(), 4u);
}

TEST(AlertEngineTest, BelowRuleAndHoldDownOneFiresImmediately) {
  MetricsRegistry registry;
  AlertEngine engine;
  AlertRule rule;
  rule.name = "quality_drop";
  rule.metric = "quality.top1";
  rule.kind = AlertRule::Kind::kBelow;
  rule.threshold = 0.5;
  ASSERT_TRUE(engine.AddRule(rule).ok());

  registry.GetGauge("quality.top1")->Set(0.2);
  EXPECT_EQ(engine.EvaluateAll(&registry, /*series=*/nullptr), 1u);
  EXPECT_EQ(engine.Snapshot()[0].state, AlertState::kFiring);
}

TEST(AlertEngineTest, RateRuleReadsItsWindowFromTheSeries) {
  MetricsRegistry registry;
  TimeSeriesStore series;
  AlertEngine engine;
  AlertRule rule;
  rule.name = "ramp";
  rule.metric = "errors";
  rule.kind = AlertRule::Kind::kRateAbove;
  rule.threshold = 1.5;
  rule.rate_window = 3;
  ASSERT_TRUE(engine.AddRule(rule).ok());

  // Slope 1.0 over the window: below the 1.5 threshold.
  series.Append("errors", 0.0, 0.0);
  series.Append("errors", 1.0, 1.0);
  series.Append("errors", 2.0, 2.0);
  EXPECT_EQ(engine.EvaluateAll(&registry, &series), 0u);

  // Two steep points push the 3-point-window slope to (8-2)/2 = 3.0.
  series.Append("errors", 3.0, 5.0);
  series.Append("errors", 4.0, 8.0);
  EXPECT_EQ(engine.EvaluateAll(&registry, &series), 1u);
  EXPECT_EQ(engine.Snapshot()[0].last_value, 3.0);
}

TEST(AlertEngineTest, MissingMetricStaysOkAndRecoversFiringRules) {
  MetricsRegistry registry;
  AlertEngine engine;
  AlertRule rule;
  rule.name = "ghost";
  rule.metric = "never.registered";
  rule.threshold = -1.0;  // Any resolved value would breach (> -1).
  ASSERT_TRUE(engine.AddRule(rule).ok());

  EXPECT_EQ(engine.EvaluateAll(&registry, /*series=*/nullptr), 0u);
  EXPECT_EQ(engine.Snapshot()[0].state, AlertState::kOk);
  EXPECT_FALSE(engine.Snapshot()[0].last_value_known);
  EXPECT_EQ(registry.GetCounter("alert.missing_metric")->Value(), 1u);

  // Metric appears -> fires; disappears from sampling -> back to ok.
  registry.GetGauge("never.registered")->Set(1.0);
  EXPECT_EQ(engine.EvaluateAll(&registry, /*series=*/nullptr), 1u);
}

TEST(AlertEngineTest, ThresholdRuleFallsBackToSeriesLatestPoint) {
  MetricsRegistry registry;  // Does not know "external.metric".
  TimeSeriesStore series;
  series.Append("external.metric", 0.0, 1.0);
  series.Append("external.metric", 1.0, 42.0);

  AlertEngine engine;
  AlertRule rule;
  rule.name = "external";
  rule.metric = "external.metric";
  rule.threshold = 10.0;
  ASSERT_TRUE(engine.AddRule(rule).ok());
  EXPECT_EQ(engine.EvaluateAll(&registry, &series), 1u);
  EXPECT_EQ(engine.Snapshot()[0].last_value, 42.0);
}

TEST(AlertEngineTest, ClearDropsRulesAndResetsEvaluations) {
  AlertEngine engine;
  AlertRule rule;
  rule.name = "r";
  rule.metric = "m";
  ASSERT_TRUE(engine.AddRule(rule).ok());
  MetricsRegistry registry;
  engine.EvaluateAll(&registry, /*series=*/nullptr);
  engine.Clear();
  EXPECT_EQ(engine.NumRules(), 0u);
  EXPECT_EQ(engine.evaluations(), 0u);
  // The name is reusable after Clear().
  EXPECT_TRUE(engine.AddRule(rule).ok());
}

TEST(AlertEngineTest, GlobalIsASingleton) {
  EXPECT_EQ(&AlertEngine::Global(), &AlertEngine::Global());
}

TEST(AlertStateNameTest, NamesAreStable) {
  EXPECT_STREQ(AlertStateName(AlertState::kOk), "ok");
  EXPECT_STREQ(AlertStateName(AlertState::kPending), "pending");
  EXPECT_STREQ(AlertStateName(AlertState::kFiring), "firing");
}

}  // namespace
}  // namespace crowdselect::obs
