#include "obs/crash_handler.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "crowddb/jsonl.h"
#include "obs/flight_recorder.h"

namespace crowdselect::obs {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(CrashHandlerTest, InstallRejectsEmptyDumpDir) {
  CrashHandlerOptions options;
  const Status st = InstallCrashHandler(options);
  EXPECT_FALSE(st.ok());
  EXPECT_TRUE(st.IsInvalidArgument()) << st.ToString();
}

TEST(CrashHandlerTest, WriteDiagnosticDumpIsParseableJsonl) {
  FlightRecorder::Global().Record(
      FlightEventType::kMark,
      FlightRecorder::Global().InternName("test.crash.dump"));
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_diag_dump.jsonl")
          .string();
  ASSERT_TRUE(WriteDiagnosticDump(path, "diag_test").ok());

  std::istringstream lines(ReadFile(path));
  std::string line;
  size_t line_no = 0;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    auto object = jsonl::ParseObject(line);
    ASSERT_TRUE(object.ok()) << "line " << line_no << ": " << line;
    if (line_no == 0) {
      EXPECT_EQ(std::get<std::string>(object->at("type")), "flight_dump");
      EXPECT_EQ(std::get<std::string>(object->at("reason")), "diag_test");
    }
    ++line_no;
  }
  EXPECT_GE(line_no, 2u);
  std::filesystem::remove(path);
}

#if defined(__unix__) || defined(__APPLE__)
TEST(CrashHandlerTest, InstallCreatesDirAndPrecomputesDumpPath) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "cs_crash_test_dir" / "sub";
  std::filesystem::remove_all(dir.parent_path());
  CrashHandlerOptions options;
  options.dump_dir = dir.string();
  options.build_info = "unit-test build";
  options.config = "config with \"quotes\" and \\slashes";
  ASSERT_TRUE(InstallCrashHandler(options).ok());
  EXPECT_TRUE(CrashHandlerInstalled());
  EXPECT_TRUE(std::filesystem::is_directory(dir));
  const std::string path = CrashDumpPath();
  EXPECT_NE(path.find("crash_"), std::string::npos);
  EXPECT_NE(path.find(dir.string()), std::string::npos);
  std::filesystem::remove_all(dir.parent_path());
}
#endif  // __unix__ || __APPLE__

}  // namespace
}  // namespace crowdselect::obs
