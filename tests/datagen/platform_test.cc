#include "datagen/platform.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdselect {
namespace {

PlatformConfig TinyConfig(Platform platform) {
  PlatformConfig config = DefaultPlatformConfig(platform);
  config.world.num_workers = 30;
  config.world.num_tasks = 80;
  config.world.vocab_size = 150;
  config.world.num_categories = 4;
  return config;
}

TEST(PlatformTest, NamesAreStable) {
  EXPECT_STREQ(PlatformName(Platform::kQuora), "Quora");
  EXPECT_STREQ(PlatformName(Platform::kYahooAnswer), "Yahoo!Answer");
  EXPECT_STREQ(PlatformName(Platform::kStackOverflow), "StackOverflow");
}

TEST(PlatformTest, DefaultConfigsMirrorPaperStructure) {
  const auto quora = DefaultPlatformConfig(Platform::kQuora);
  const auto yahoo = DefaultPlatformConfig(Platform::kYahooAnswer);
  const auto stack = DefaultPlatformConfig(Platform::kStackOverflow);
  // Yahoo is the biggest, Stack the smallest (Table 2 ordering).
  EXPECT_GT(yahoo.world.num_tasks, quora.world.num_tasks);
  EXPECT_GT(quora.world.num_tasks, stack.world.num_tasks);
  // Yahoo questions are short; Quora long (paper §7.3.2).
  EXPECT_LT(yahoo.world.mean_task_length, quora.world.mean_task_length);
  // Feedback models per §4.1.5.
  EXPECT_EQ(yahoo.feedback, FeedbackModel::kBestAnswer);
  EXPECT_EQ(quora.feedback, FeedbackModel::kThumbsUp);
  EXPECT_EQ(stack.feedback, FeedbackModel::kThumbsUp);
}

TEST(PlatformTest, DatabaseIsFullyPopulated) {
  auto dataset = GeneratePlatformDataset(Platform::kQuora,
                                         TinyConfig(Platform::kQuora), 3);
  ASSERT_TRUE(dataset.ok()) << dataset.status().ToString();
  const CrowdDatabase& db = dataset->db;
  EXPECT_EQ(db.NumWorkers(), 30u);
  EXPECT_EQ(db.NumTasks(), 80u);
  EXPECT_GT(db.NumAssignments(), 80u);  // >= 1 answer per task.
  EXPECT_EQ(db.NumAssignments(), db.NumScoredAssignments());
  EXPECT_EQ(db.vocabulary().size(), 150u);
  // Every task resolved and has readable text.
  for (const auto& task : db.tasks()) {
    EXPECT_TRUE(task.resolved);
    EXPECT_FALSE(task.text.empty());
    EXPECT_GT(task.bag.TotalTokens(), 0u);
  }
}

TEST(PlatformTest, ThumbsUpScoresAreNonNegativeIntegers) {
  auto dataset = GeneratePlatformDataset(Platform::kQuora,
                                         TinyConfig(Platform::kQuora), 4);
  ASSERT_TRUE(dataset.ok());
  for (const auto& a : dataset->db.assignments()) {
    ASSERT_TRUE(a.has_score);
    EXPECT_GE(a.score, 0.0);
    EXPECT_DOUBLE_EQ(a.score, std::round(a.score));
  }
}

TEST(PlatformTest, BestAnswerScoresFollowPaperDefinition) {
  auto dataset = GeneratePlatformDataset(
      Platform::kYahooAnswer, TinyConfig(Platform::kYahooAnswer), 5);
  ASSERT_TRUE(dataset.ok());
  for (size_t j = 0; j < dataset->feedback.size(); ++j) {
    const auto& scores = dataset->feedback[j];
    // Exactly one best answerer with score 1; others in [0, 1].
    int best_count = 0;
    for (double s : scores) {
      EXPECT_GE(s, 0.0);
      EXPECT_LE(s, 1.0);
      if (s == 1.0) ++best_count;
    }
    EXPECT_GE(best_count, 1);
  }
}

TEST(PlatformTest, RightWorkerIsHighestScored) {
  auto dataset = GeneratePlatformDataset(Platform::kStackOverflow,
                                         TinyConfig(Platform::kStackOverflow),
                                         6);
  ASSERT_TRUE(dataset.ok());
  for (size_t j = 0; j < 10; ++j) {
    const size_t slot = dataset->RightWorkerSlot(j);
    for (double s : dataset->feedback[j]) {
      EXPECT_LE(s, dataset->feedback[j][slot]);
    }
    EXPECT_EQ(dataset->RightWorker(j), dataset->world.assignment[j][slot]);
  }
}

TEST(PlatformTest, StackOverflowUsesTagVocabulary) {
  auto dataset = GeneratePlatformDataset(Platform::kStackOverflow,
                                         TinyConfig(Platform::kStackOverflow),
                                         7);
  ASSERT_TRUE(dataset.ok());
  EXPECT_TRUE(dataset->db.vocabulary().Contains("tag0"));
  EXPECT_FALSE(dataset->db.vocabulary().Contains("word0"));
}

TEST(PlatformTest, DeterministicForSeed) {
  auto d1 = GeneratePlatformDataset(Platform::kQuora,
                                    TinyConfig(Platform::kQuora), 8);
  auto d2 = GeneratePlatformDataset(Platform::kQuora,
                                    TinyConfig(Platform::kQuora), 8);
  ASSERT_TRUE(d1.ok() && d2.ok());
  EXPECT_EQ(d1->db.NumAssignments(), d2->db.NumAssignments());
  for (size_t i = 0; i < d1->db.assignments().size(); ++i) {
    EXPECT_DOUBLE_EQ(d1->db.assignments()[i].score,
                     d2->db.assignments()[i].score);
  }
  EXPECT_EQ(d1->db.GetTask(0).value()->text, d2->db.GetTask(0).value()->text);
}

TEST(PlatformTest, FeedbackCorrelatesWithTruePerformance) {
  // The realized feedback must carry signal about who is actually better
  // (otherwise no selector could learn anything).
  auto dataset = GeneratePlatformDataset(Platform::kQuora,
                                         TinyConfig(Platform::kQuora), 9);
  ASSERT_TRUE(dataset.ok());
  double hits = 0.0, total = 0.0;
  for (size_t j = 0; j < dataset->feedback.size(); ++j) {
    if (dataset->world.assignment[j].size() < 2) continue;
    const size_t best_fb = dataset->RightWorkerSlot(j);
    const auto& perf = dataset->world.true_performance[j];
    const size_t best_true = static_cast<size_t>(
        std::max_element(perf.begin(), perf.end()) - perf.begin());
    hits += best_fb == best_true ? 1.0 : 0.0;
    total += 1.0;
  }
  ASSERT_GT(total, 10.0);
  EXPECT_GT(hits / total, 0.5);  // Far above chance for >=2 candidates.
}

}  // namespace
}  // namespace crowdselect
