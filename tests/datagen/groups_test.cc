#include "datagen/groups.h"

#include <gtest/gtest.h>

#include "util/logging.h"

namespace crowdselect {
namespace {

CrowdDatabase MakeDb() {
  CrowdDatabase db;
  db.AddWorker("busy");    // 3 tasks.
  db.AddWorker("medium");  // 2 tasks.
  db.AddWorker("lazy");    // 1 task.
  db.AddWorker("idle");    // 0 tasks.
  for (int j = 0; j < 4; ++j) db.AddTask("task " + std::to_string(j));
  auto score = [&](WorkerId w, TaskId t) {
    CS_CHECK_OK(db.Assign(w, t));
    CS_CHECK_OK(db.RecordFeedback(w, t, 1.0));
  };
  score(0, 0);
  score(0, 1);
  score(0, 2);
  score(1, 1);
  score(1, 3);
  score(2, 3);
  return db;
}

TEST(GroupsTest, MembershipByThreshold) {
  CrowdDatabase db = MakeDb();
  WorkerGroup g1 = MakeGroup(db, 1, "Quora");
  EXPECT_EQ(g1.name, "Quora1");
  EXPECT_EQ(g1.members, (std::vector<WorkerId>{0, 1, 2}));
  WorkerGroup g2 = MakeGroup(db, 2, "Quora");
  EXPECT_EQ(g2.members, (std::vector<WorkerId>{0, 1}));
  WorkerGroup g3 = MakeGroup(db, 3, "Quora");
  EXPECT_EQ(g3.members, (std::vector<WorkerId>{0}));
  WorkerGroup g4 = MakeGroup(db, 4, "Quora");
  EXPECT_TRUE(g4.members.empty());
}

TEST(GroupsTest, CoverageShrinksWithThreshold) {
  CrowdDatabase db = MakeDb();
  // Group1 covers all 4 resolved tasks.
  EXPECT_DOUBLE_EQ(GroupTaskCoverage(db, MakeGroup(db, 1, "g")), 1.0);
  // Group3 = {busy} covers tasks 0,1,2 of 4.
  EXPECT_DOUBLE_EQ(GroupTaskCoverage(db, MakeGroup(db, 3, "g")), 0.75);
  // Empty group covers nothing.
  EXPECT_DOUBLE_EQ(GroupTaskCoverage(db, MakeGroup(db, 9, "g")), 0.0);
}

TEST(GroupsTest, UnresolvedTasksExcludedFromCoverage) {
  CrowdDatabase db = MakeDb();
  db.AddTask("never answered");
  EXPECT_DOUBLE_EQ(GroupTaskCoverage(db, MakeGroup(db, 1, "g")), 1.0);
}

TEST(GroupsTest, SweepIsMonotone) {
  CrowdDatabase db = MakeDb();
  auto stats = GroupSweep(db, {1, 2, 3});
  ASSERT_EQ(stats.size(), 3u);
  for (size_t i = 1; i < stats.size(); ++i) {
    EXPECT_LE(stats[i].size, stats[i - 1].size);
    EXPECT_LE(stats[i].coverage, stats[i - 1].coverage);
  }
  EXPECT_EQ(stats[0].threshold, 1u);
  EXPECT_EQ(stats[0].size, 3u);
}

}  // namespace
}  // namespace crowdselect
