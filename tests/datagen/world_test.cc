#include "datagen/world.h"

#include <gtest/gtest.h>

#include <algorithm>

namespace crowdselect {
namespace {

WorldConfig SmallConfig() {
  WorldConfig config;
  config.num_workers = 40;
  config.num_tasks = 120;
  config.num_categories = 4;
  config.vocab_size = 200;
  return config;
}

TEST(WorldTest, BuildParamsShapesAndStochasticity) {
  Rng rng(1);
  WorldConfig config = SmallConfig();
  TdpmModelParams params = BuildWorldParams(config, &rng);
  EXPECT_EQ(params.num_categories(), 4u);
  EXPECT_EQ(params.vocab_size(), 200u);
  for (size_t k = 0; k < 4; ++k) {
    double row = 0.0;
    for (size_t v = 0; v < 200; ++v) {
      EXPECT_GE(params.beta(k, v), 0.0);
      row += params.beta(k, v);
    }
    EXPECT_NEAR(row, 1.0, 1e-9);
  }
  // Skill prior is symmetric with the configured variance.
  EXPECT_NEAR(params.sigma_w(0, 0),
              config.skill_stddev * config.skill_stddev, 1e-12);
  EXPECT_DOUBLE_EQ(params.sigma_w.SymmetryError(), 0.0);
  EXPECT_DOUBLE_EQ(params.mu_w[0], config.skill_mean);
}

TEST(WorldTest, TopicSlicesHaveDistinctMass) {
  Rng rng(2);
  WorldConfig config = SmallConfig();
  TdpmModelParams params = BuildWorldParams(config, &rng);
  // Each category's own slice should hold much more mass than another
  // category's slice.
  const size_t shared = static_cast<size_t>(200 * config.shared_vocab_fraction);
  const size_t per_topic = (200 - shared) / 4;
  for (size_t k = 0; k < 4; ++k) {
    double own = 0.0, other = 0.0;
    for (size_t r = 0; r < per_topic; ++r) {
      own += params.beta(k, shared + k * per_topic + r);
      other += params.beta(k, shared + ((k + 2) % 4) * per_topic + r);
    }
    EXPECT_GT(own, 2.0 * other) << "category " << k;
  }
}

TEST(WorldTest, SampleWorldStructure) {
  auto world = SampleWorld(SmallConfig(), 7);
  ASSERT_TRUE(world.ok()) << world.status().ToString();
  EXPECT_EQ(world->draw.worker_skills.size(), 40u);
  EXPECT_EQ(world->draw.tasks.size(), 120u);
  EXPECT_EQ(world->assignment.size(), 120u);
  EXPECT_EQ(world->true_performance.size(), 120u);
  size_t total_answers = 0;
  for (size_t j = 0; j < 120; ++j) {
    EXPECT_GE(world->assignment[j].size(), 1u);
    EXPECT_EQ(world->true_performance[j].size(), world->assignment[j].size());
    total_answers += world->assignment[j].size();
    // No duplicate answerers.
    auto slots = world->assignment[j];
    std::sort(slots.begin(), slots.end());
    EXPECT_TRUE(std::adjacent_find(slots.begin(), slots.end()) == slots.end());
  }
  EXPECT_EQ(world->draw.scores.size(), total_answers);
}

TEST(WorldTest, ParticipationIsSkewed) {
  auto world = SampleWorld(SmallConfig(), 8);
  ASSERT_TRUE(world.ok());
  std::vector<size_t> participation(40, 0);
  for (const auto& slots : world->assignment) {
    for (uint32_t w : slots) ++participation[w];
  }
  // Zipf participation: the most active worker answers far more than the
  // median worker.
  std::vector<size_t> sorted = participation;
  std::sort(sorted.rbegin(), sorted.rend());
  EXPECT_GT(sorted[0], 3 * std::max<size_t>(sorted[20], 1));
}

TEST(WorldTest, TruePerformanceUsesSoftmaxProportions) {
  // Default semantics (paper Fig. 2): performance = w . softmax(c).
  auto world = SampleWorld(SmallConfig(), 9);
  ASSERT_TRUE(world.ok());
  for (size_t j = 0; j < 5; ++j) {
    const Vector proportions = world->draw.tasks[j].categories.Softmax();
    for (size_t s = 0; s < world->assignment[j].size(); ++s) {
      const uint32_t w = world->assignment[j][s];
      EXPECT_DOUBLE_EQ(world->true_performance[j][s],
                       world->draw.worker_skills[w].Dot(proportions));
    }
  }
}

TEST(WorldTest, RawScoreSemanticsWhenSoftmaxDisabled) {
  WorldConfig config = SmallConfig();
  config.score_on_softmax_categories = false;
  auto world = SampleWorld(config, 9);
  ASSERT_TRUE(world.ok());
  for (size_t s = 0; s < world->assignment[0].size(); ++s) {
    const uint32_t w = world->assignment[0][s];
    EXPECT_DOUBLE_EQ(world->true_performance[0][s],
                     world->draw.worker_skills[w].Dot(
                         world->draw.tasks[0].categories));
  }
}

TEST(WorldTest, DeterministicForSeed) {
  auto w1 = SampleWorld(SmallConfig(), 11);
  auto w2 = SampleWorld(SmallConfig(), 11);
  ASSERT_TRUE(w1.ok() && w2.ok());
  EXPECT_EQ(w1->assignment, w2->assignment);
  EXPECT_EQ(w1->draw.tasks[0].tokens, w2->draw.tasks[0].tokens);
  EXPECT_DOUBLE_EQ(w1->draw.scores[0].score, w2->draw.scores[0].score);
}

TEST(WorldTest, InvalidConfigRejected) {
  WorldConfig config = SmallConfig();
  config.num_workers = 0;
  EXPECT_TRUE(SampleWorld(config, 1).status().IsInvalidArgument());
}

}  // namespace
}  // namespace crowdselect
