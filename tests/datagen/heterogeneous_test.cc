#include "datagen/heterogeneous.h"

#include <gtest/gtest.h>

#include <map>

#include "eval/split.h"

namespace crowdselect {
namespace {

HeterogeneousConfig SmallConfig() {
  HeterogeneousConfig config;
  config.num_types = 3;
  config.num_workers = 40;
  config.num_tasks = 200;
  config.vocab_per_type = 20;
  config.shared_vocab = 6;
  config.answers_per_task = 4;
  config.seed = 99;
  return config;
}

TEST(HeterogeneousDatasetTest, ShapesAndAlignment) {
  auto data = GenerateHeterogeneousDataset(SmallConfig());
  ASSERT_TRUE(data.ok());
  const CrowdDatabase& db = data->dataset.db;
  EXPECT_EQ(db.NumWorkers(), 40u);
  EXPECT_EQ(db.NumTasks(), 200u);
  EXPECT_EQ(db.vocabulary().size(), 3u * 20u + 6u);
  ASSERT_EQ(data->task_type.size(), 200u);
  ASSERT_EQ(data->worker_profile.size(), 40u);
  ASSERT_EQ(data->true_quality.size(), 40u);
  // Assignment / feedback aligned per task, everything scored.
  ASSERT_EQ(data->dataset.world.assignment.size(), 200u);
  ASSERT_EQ(data->dataset.feedback.size(), 200u);
  for (size_t j = 0; j < 200; ++j) {
    EXPECT_EQ(data->dataset.world.assignment[j].size(), 4u);
    EXPECT_EQ(data->dataset.feedback[j].size(), 4u);
  }
  EXPECT_EQ(db.NumScoredAssignments(), db.NumAssignments());
}

TEST(HeterogeneousDatasetTest, DeterministicInSeed) {
  auto a = GenerateHeterogeneousDataset(SmallConfig());
  auto b = GenerateHeterogeneousDataset(SmallConfig());
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(a->task_type, b->task_type);
  EXPECT_EQ(a->worker_profile, b->worker_profile);
  EXPECT_EQ(a->dataset.feedback, b->dataset.feedback);

  HeterogeneousConfig other = SmallConfig();
  other.seed = 100;
  auto c = GenerateHeterogeneousDataset(other);
  ASSERT_TRUE(c.ok());
  EXPECT_NE(a->dataset.feedback, c->dataset.feedback);
}

TEST(HeterogeneousDatasetTest, ZipfTypeMixIsSkewed) {
  HeterogeneousConfig config = SmallConfig();
  config.num_tasks = 600;
  config.type_zipf_exponent = 1.0;
  auto data = GenerateHeterogeneousDataset(config);
  ASSERT_TRUE(data.ok());
  std::map<uint32_t, size_t> counts;
  for (uint32_t t : data->task_type) ++counts[t];
  // Rank 0 must dominate rank 2 under s=1 (expected ratio 3:1).
  EXPECT_GT(counts[0], counts[2] * 2);
  // But every type must appear.
  EXPECT_EQ(counts.size(), 3u);
}

TEST(HeterogeneousDatasetTest, ProfileMixMatchesFractions) {
  auto data = GenerateHeterogeneousDataset(SmallConfig());
  ASSERT_TRUE(data.ok());
  std::map<WorkerProfile, size_t> counts;
  for (WorkerProfile p : data->worker_profile) ++counts[p];
  // floor(0.55*40)=22 specialists, floor(0.15*40)=6 spammers,
  // floor(0.05*40)=2 adversarial, remainder generalists.
  EXPECT_EQ(counts[WorkerProfile::kSpecialist], 22u);
  EXPECT_EQ(counts[WorkerProfile::kSpammer], 6u);
  EXPECT_EQ(counts[WorkerProfile::kAdversarial], 2u);
  EXPECT_EQ(counts[WorkerProfile::kGeneralist], 10u);
}

TEST(HeterogeneousDatasetTest, SpecialistsBeatSpammersOnTheirType) {
  auto data = GenerateHeterogeneousDataset(SmallConfig());
  ASSERT_TRUE(data.ok());
  for (size_t w = 0; w < data->worker_profile.size(); ++w) {
    const auto& quality = data->true_quality[w];
    switch (data->worker_profile[w]) {
      case WorkerProfile::kSpecialist:
        EXPECT_GT(quality[data->preferred_type[w]], 0.75);
        break;
      case WorkerProfile::kAdversarial:
        for (double q : quality) EXPECT_LT(q, 0.2);
        break;
      case WorkerProfile::kSpammer:
        for (double q : quality) EXPECT_DOUBLE_EQ(q, 0.5);
        break;
      case WorkerProfile::kGeneralist:
        for (double q : quality) {
          EXPECT_GT(q, 0.4);
          EXPECT_LT(q, 0.65);
        }
        break;
    }
  }
}

TEST(HeterogeneousDatasetTest, FeedsTheEvalSplitMachinery) {
  auto data = GenerateHeterogeneousDataset(SmallConfig());
  ASSERT_TRUE(data.ok());
  const WorkerGroup group = MakeGroup(data->dataset.db, 1, "Hetero");
  SplitOptions options;
  options.num_test_tasks = 30;
  auto split = MakeSplit(data->dataset, group, options);
  ASSERT_TRUE(split.ok());
  EXPECT_GT(split->cases.size(), 0u);
  EXPECT_GT(split->train_db.NumScoredAssignments(), 0u);
}

TEST(HeterogeneousDatasetTest, RejectsBadConfigs) {
  HeterogeneousConfig config = SmallConfig();
  config.spammer_fraction = 0.9;
  config.specialist_fraction = 0.9;
  EXPECT_TRUE(
      GenerateHeterogeneousDataset(config).status().IsInvalidArgument());
  config = SmallConfig();
  config.num_types = 0;
  EXPECT_TRUE(
      GenerateHeterogeneousDataset(config).status().IsInvalidArgument());
}

}  // namespace
}  // namespace crowdselect
