#include "datagen/answers.h"

#include <gtest/gtest.h>

#include "text/jaccard.h"

namespace crowdselect {
namespace {

TdpmModelParams TwoTopicParams() {
  TdpmModelParams params = TdpmModelParams::Init(2, 40);
  for (size_t v = 0; v < 40; ++v) {
    params.beta(0, v) = v < 20 ? 0.0495 : 0.0005;
    params.beta(1, v) = v < 20 ? 0.0005 : 0.0495;
  }
  return params;
}

TEST(AnswerSimTest, QualityIsMonotoneInPerformance) {
  TdpmGenerator generator(TwoTopicParams());
  AnswerSimulator sim(&generator, AnswerSimConfig{});
  EXPECT_LT(sim.QualityOf(-5.0), sim.QualityOf(0.0));
  EXPECT_LT(sim.QualityOf(0.0), sim.QualityOf(5.0));
}

TEST(AnswerSimTest, QualityRespectsClamps) {
  TdpmGenerator generator(TwoTopicParams());
  AnswerSimConfig config;
  config.min_quality = 0.1;
  config.max_quality = 0.9;
  AnswerSimulator sim(&generator, config);
  EXPECT_DOUBLE_EQ(sim.QualityOf(-100.0), 0.1);
  EXPECT_DOUBLE_EQ(sim.QualityOf(100.0), 0.9);
}

TEST(AnswerSimTest, HighPerformanceAnswersAreOnTopic) {
  TdpmGenerator generator(TwoTopicParams());
  AnswerSimulator sim(&generator, AnswerSimConfig{});
  Rng rng(3);
  // Task strongly in category 0.
  const Vector categories{6.0, -6.0};
  size_t on_topic = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    BagOfWords answer = sim.SimulateAnswer(categories, /*performance=*/8.0, &rng);
    for (const auto& e : answer.entries()) {
      total += e.count;
      if (e.term < 20) on_topic += e.count;
    }
  }
  EXPECT_GT(static_cast<double>(on_topic) / total, 0.8);
}

TEST(AnswerSimTest, LowPerformanceAnswersAreNoisy) {
  TdpmGenerator generator(TwoTopicParams());
  AnswerSimulator sim(&generator, AnswerSimConfig{});
  Rng rng(4);
  const Vector categories{6.0, -6.0};
  size_t on_topic = 0, total = 0;
  for (int i = 0; i < 50; ++i) {
    BagOfWords answer =
        sim.SimulateAnswer(categories, /*performance=*/-8.0, &rng);
    for (const auto& e : answer.entries()) {
      total += e.count;
      if (e.term < 20) on_topic += e.count;
    }
  }
  // Noise tokens are uniform over all 40 terms, so ~50% land on-topic.
  EXPECT_LT(static_cast<double>(on_topic) / total, 0.7);
}

TEST(AnswerSimTest, BetterWorkersAreCloserToEachOtherInJaccard) {
  // The property the Yahoo feedback model relies on: two high-performance
  // answers share topical vocabulary, a low-performance answer does not.
  TdpmGenerator generator(TwoTopicParams());
  AnswerSimulator sim(&generator, AnswerSimConfig{});
  Rng rng(5);
  const Vector categories{6.0, -6.0};
  double good_good = 0.0, good_bad = 0.0;
  const int trials = 40;
  for (int i = 0; i < trials; ++i) {
    const BagOfWords a = sim.SimulateAnswer(categories, 8.0, &rng);
    const BagOfWords b = sim.SimulateAnswer(categories, 8.0, &rng);
    const BagOfWords c = sim.SimulateAnswer(categories, -8.0, &rng);
    good_good += JaccardSimilarity(a, b);
    good_bad += JaccardSimilarity(a, c);
  }
  EXPECT_GT(good_good / trials, good_bad / trials);
}

TEST(AnswerSimTest, AnswerLengthTracksConfig) {
  TdpmGenerator generator(TwoTopicParams());
  AnswerSimConfig config;
  config.mean_answer_length = 30.0;
  config.answer_length_stddev = 2.0;
  AnswerSimulator sim(&generator, config);
  Rng rng(6);
  double total = 0.0;
  for (int i = 0; i < 200; ++i) {
    total += static_cast<double>(
        sim.SimulateAnswer(Vector{0.0, 0.0}, 0.0, &rng).TotalTokens());
  }
  EXPECT_NEAR(total / 200.0, 30.0, 1.5);
}

}  // namespace
}  // namespace crowdselect
