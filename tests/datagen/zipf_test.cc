#include "datagen/zipf.h"

#include <gtest/gtest.h>

#include <cmath>

namespace crowdselect {
namespace {

TEST(ZipfTest, PmfSumsToOneAndDecreases) {
  ZipfDistribution zipf(100, 1.1);
  double total = 0.0;
  for (size_t r = 0; r < 100; ++r) {
    total += zipf.Pmf(r);
    if (r > 0) {
      EXPECT_LT(zipf.Pmf(r), zipf.Pmf(r - 1));
    }
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ZipfTest, PmfRatioMatchesExponent) {
  ZipfDistribution zipf(10, 2.0);
  // P(0)/P(1) = 2^s = 4.
  EXPECT_NEAR(zipf.Pmf(0) / zipf.Pmf(1), 4.0, 1e-12);
}

TEST(ZipfTest, SamplesMatchPmf) {
  ZipfDistribution zipf(20, 1.0);
  Rng rng(5);
  std::vector<int> counts(20, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[zipf.Sample(&rng)];
  for (size_t r = 0; r < 5; ++r) {
    EXPECT_NEAR(static_cast<double>(counts[r]) / n, zipf.Pmf(r),
                0.01 + 0.05 * zipf.Pmf(r))
        << "rank " << r;
  }
}

TEST(ZipfTest, SingleElementAlwaysSampled) {
  ZipfDistribution zipf(1, 1.5);
  Rng rng(1);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(zipf.Sample(&rng), 0u);
  EXPECT_DOUBLE_EQ(zipf.Pmf(0), 1.0);
}

TEST(ZipfTest, ZeroExponentIsUniform) {
  ZipfDistribution zipf(4, 0.0);
  for (size_t r = 0; r < 4; ++r) EXPECT_NEAR(zipf.Pmf(r), 0.25, 1e-12);
}

}  // namespace
}  // namespace crowdselect
