// Standalone corpus-replay driver: stands in for libFuzzer when the
// toolchain has none (GCC builds, ctest smoke runs). Each argument is a
// corpus file or a directory of corpus files; every input is fed through
// LLVMFuzzerTestOneInput exactly once.
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "fuzz_common.h"

namespace {

namespace fs = std::filesystem;

bool RunFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot read %s\n", path.string().c_str());
    return false;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::fprintf(stderr, "usage: %s <corpus-file-or-dir>...\n", argv[0]);
    return 2;
  }
  size_t inputs = 0;
  for (int i = 1; i < argc; ++i) {
    const fs::path arg(argv[i]);
    std::error_code ec;
    if (fs::is_directory(arg, ec)) {
      std::vector<fs::path> files;
      for (const auto& entry : fs::recursive_directory_iterator(arg)) {
        if (entry.is_regular_file()) files.push_back(entry.path());
      }
      for (const auto& file : files) {
        if (RunFile(file)) ++inputs;
      }
    } else if (RunFile(arg)) {
      ++inputs;
    }
  }
  if (inputs == 0) {
    std::fprintf(stderr, "no corpus inputs found\n");
    return 1;
  }
  std::printf("replayed %zu corpus input(s) without a crash\n", inputs);
  return 0;
}
