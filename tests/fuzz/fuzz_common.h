// Shared scaffolding for the fuzz harnesses (docs/static_analysis.md).
// Each harness defines LLVMFuzzerTestOneInput; linked against libFuzzer
// (CROWDSELECT_BUILD_FUZZERS=ON, Clang) it fuzzes, linked against
// fuzz_driver_main.cc it replays corpus files as a CI/ctest smoke.
#ifndef CROWDSELECT_TESTS_FUZZ_FUZZ_COMMON_H_
#define CROWDSELECT_TESTS_FUZZ_FUZZ_COMMON_H_

#include <cstddef>
#include <cstdint>
#include <string>

#include "util/logging.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace crowdselect::fuzz {

/// Silences per-input log chatter (parsers may warn on every iteration).
/// Call first in every harness; idempotent.
inline void QuietLogging() {
  static const bool done = [] {
    SetLogLevel(LogLevel::kError);
    return true;
  }();
  (void)done;  // Static initializer runs once; the value itself is unused.
}

inline std::string ToString(const uint8_t* data, size_t size) {
  return std::string(reinterpret_cast<const char*>(data), size);
}

}  // namespace crowdselect::fuzz

#endif  // CROWDSELECT_TESTS_FUZZ_FUZZ_COMMON_H_
