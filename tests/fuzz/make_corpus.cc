// Seed-corpus generator: performs real writes through a durable
// CrowdStoreEngine and harvests the artifacts (WAL, CHECKPOINT, MANIFEST,
// JSONL exports) as fuzzing seeds, plus mutated variants (torn tails,
// flipped CRC bytes, truncations) so every fuzz target starts from inputs
// that reach deep into its parser.
//
//   make_corpus <out_dir>   writes <out_dir>/{wal_replay,checkpoint,jsonl}/
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>

#include "crowddb/jsonl.h"
#include "crowddb/storage_engine.h"
#include "util/logging.h"

namespace {

namespace fs = std::filesystem;
using namespace crowdselect;  // NOLINT — generator tool, not library code.

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  CS_CHECK(static_cast<bool>(in)) << "cannot read " << path.string();
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

void WriteFileOrDie(const fs::path& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  CS_CHECK(static_cast<bool>(out)) << "cannot write " << path.string();
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  CS_CHECK(static_cast<bool>(out)) << "short write to " << path.string();
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <out_dir>\n", argv[0]);
    return 2;
  }
  const fs::path out(argv[1]);
  const fs::path wal_dir = out / "wal_replay";
  const fs::path ckpt_dir = out / "checkpoint";
  const fs::path jsonl_dir = out / "jsonl";
  const fs::path scratch = out / "_scratch";
  fs::create_directories(wal_dir);
  fs::create_directories(ckpt_dir);
  fs::create_directories(jsonl_dir);
  fs::remove_all(scratch);
  fs::create_directories(scratch);

  // Real writes: every WAL record type at least once.
  StorageOptions options;
  options.num_shards = 4;
  auto opened = CrowdStoreEngine::Open(scratch.string(), options);
  CS_CHECK(opened.ok()) << opened.status().ToString();
  CrowdStoreEngine& engine = **opened;
  for (int i = 0; i < 6; ++i) {
    auto worker = engine.AddWorker("worker-" + std::to_string(i), i % 2 == 0);
    CS_CHECK(worker.ok()) << worker.status().ToString();
    auto task = engine.AddTask("label the sentiment of answer " +
                               std::to_string(i) + " about databases");
    CS_CHECK(task.ok()) << task.status().ToString();
    CS_CHECK_OK(engine.Assign(*worker, *task));
    CS_CHECK_OK(engine.RecordFeedback(*worker, *task, 0.5 + 0.1 * i));
    CS_CHECK_OK(engine.UpdateWorkerSkills(*worker, {0.1 * i, 0.2, 0.3}));
    CS_CHECK_OK(engine.UpdateTaskCategories(*task, {0.4, 0.5, 0.1 * i}));
    CS_CHECK_OK(engine.SetWorkerOnline(*worker, i % 2 != 0));
  }

  // WAL seeds: the intact log, a torn tail, and a flipped CRC byte.
  const std::string wal = ReadFileOrDie(scratch / "wal.log");
  CS_CHECK(!wal.empty()) << "real writes produced an empty WAL";
  WriteFileOrDie(wal_dir / "real_writes", wal);
  WriteFileOrDie(wal_dir / "torn_tail", wal.substr(0, wal.size() - 5));
  std::string corrupt = wal;
  corrupt[corrupt.size() / 2] ^= 0x5A;
  WriteFileOrDie(wal_dir / "flipped_byte", corrupt);
  WriteFileOrDie(wal_dir / "empty", "");

  // Checkpoint + MANIFEST seeds.
  CS_CHECK_OK(engine.Checkpoint());
  const std::string ckpt = ReadFileOrDie(scratch / "CHECKPOINT");
  WriteFileOrDie(ckpt_dir / "real_checkpoint", ckpt);
  WriteFileOrDie(ckpt_dir / "truncated", ckpt.substr(0, ckpt.size() / 2));
  std::string ckpt_corrupt = ckpt;
  ckpt_corrupt[ckpt_corrupt.size() / 3] ^= 0xA5;
  WriteFileOrDie(ckpt_dir / "flipped_byte", ckpt_corrupt);
  WriteFileOrDie(ckpt_dir / "manifest", ReadFileOrDie(scratch / "MANIFEST"));

  // JSONL seeds: the three exported streams joined on 0x1E, matching the
  // split in fuzz_jsonl.cc.
  auto frozen = engine.FrozenView();
  CS_CHECK(frozen.ok()) << frozen.status().ToString();
  std::ostringstream workers, tasks, assignments;
  ExportWorkersJsonl(**frozen, workers);
  ExportTasksJsonl(**frozen, tasks);
  ExportAssignmentsJsonl(**frozen, assignments);
  const std::string joined =
      workers.str() + '\x1e' + tasks.str() + '\x1e' + assignments.str();
  WriteFileOrDie(jsonl_dir / "real_export", joined);
  WriteFileOrDie(jsonl_dir / "workers_only", workers.str());
  WriteFileOrDie(jsonl_dir / "escapes",
                 "{\"handle\": \"a\\u0041\\n\\\"b\\\\\", \"online\": false}\n"
                 "\x1e{\"text\": \"t\"}\n\x1e"
                 "{\"worker_id\": 0, \"task_id\": 0, \"score\": null}\n");

  fs::remove_all(scratch);
  std::printf("seed corpus written under %s\n", out.string().c_str());
  return 0;
}
