// Fuzzes checkpoint + MANIFEST loading: an arbitrary byte string must
// parse into a CheckpointImage or fail with Status::Corruption — counts
// and lengths inside the payload are attacker-controlled and must never
// drive allocation or indexing unchecked. The same input is also run
// through the MANIFEST text validator.
#include "crowddb/storage_engine.h"
#include "fuzz_common.h"
#include "util/serialization.h"

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  crowdselect::fuzz::QuietLogging();
  const std::string bytes = crowdselect::fuzz::ToString(data, size);
  {
    crowdselect::BinaryReader reader(bytes);
    auto image = crowdselect::ParseCheckpoint(&reader);
    if (image.ok()) {
      // A successfully parsed image must be internally consistent enough
      // to count its rows.
      (void)image->db.NumWorkers();
      (void)image->db.NumAssignments();
    }
  }
  {
    auto manifest = crowdselect::ValidateManifestText(bytes);
    (void)manifest;  // Either verdict is fine; only crashes count.
  }
  return 0;
}
