// Fuzzes Wal replay: the input is an arbitrary log image; replay must
// either recover a valid prefix or fail with a Status — never crash,
// over-read, or over-allocate. The apply callback exercises the full
// record decoding (every field of every type is touched).
#include "crowddb/wal.h"
#include "fuzz_common.h"

using crowdselect::ReplayWalBuffer;
using crowdselect::Status;
using crowdselect::WalRecord;

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  crowdselect::fuzz::QuietLogging();
  uint64_t checksum = 0;
  auto replayed = ReplayWalBuffer(
      crowdselect::fuzz::ToString(data, size), /*min_seq_exclusive=*/0,
      [&checksum](const WalRecord& record) {
        checksum += record.seq + static_cast<uint64_t>(record.type) +
                    record.worker + record.task + record.text.size() +
                    record.values.size() + (record.flag ? 1 : 0);
        return Status::OK();
      });
  if (replayed.ok()) {
    // The recovered prefix can never extend past the input.
    if (replayed->valid_bytes > size) __builtin_trap();
  }
  return 0;
}
