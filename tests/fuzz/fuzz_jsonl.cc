// Fuzzes the JSONL importer end to end: the input is split on 0x1E
// (record separator) into the workers / tasks / assignments streams —
// matching the layout make_corpus emits — and imported. Malformed lines
// must surface as InvalidArgument/Corruption, never as a crash.
#include <sstream>
#include <string>

#include "crowddb/jsonl.h"
#include "fuzz_common.h"

namespace {

constexpr char kStreamSeparator = '\x1e';

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  crowdselect::fuzz::QuietLogging();
  const std::string bytes = crowdselect::fuzz::ToString(data, size);

  const size_t first = bytes.find(kStreamSeparator);
  const size_t second =
      first == std::string::npos ? std::string::npos
                                 : bytes.find(kStreamSeparator, first + 1);
  std::istringstream workers(bytes.substr(0, first));
  std::istringstream tasks(
      first == std::string::npos ? "" : bytes.substr(first + 1, second - first - 1));
  std::istringstream assignments(
      second == std::string::npos ? "" : bytes.substr(second + 1));

  auto db = crowdselect::ImportDatabaseJsonl(workers, tasks, assignments);
  if (db.ok()) {
    // Round-trip: anything we accept must re-export without crashing.
    std::ostringstream out;
    crowdselect::ExportAssignmentsJsonl(*db, out);
  }
  return 0;
}
