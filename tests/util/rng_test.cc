#include "util/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace crowdselect {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 2);
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng a(5);
  Rng child = a.Split(17);
  // The child stream should not replay the parent's outputs.
  Rng parent_copy(5);
  EXPECT_NE(child.Next(), parent_copy.Next());
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(7);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, UniformIntUnbiasedOverSmallRange) {
  Rng rng(11);
  std::vector<int> counts(5, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(5)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.2, 0.02);
  }
}

TEST(RngTest, NormalMomentsMatch) {
  Rng rng(13);
  const int n = 100000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(sq / n - mean * mean, 1.0, 0.03);
}

TEST(RngTest, NormalWithParams) {
  Rng rng(17);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(3.0, 2.0);
  EXPECT_NEAR(sum / n, 3.0, 0.05);
}

TEST(RngTest, GammaMeanEqualsShape) {
  Rng rng(19);
  for (double shape : {0.5, 1.0, 2.5, 9.0}) {
    const int n = 40000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) {
      const double g = rng.Gamma(shape);
      ASSERT_GT(g, 0.0);
      sum += g;
    }
    EXPECT_NEAR(sum / n, shape, 0.1 * shape + 0.03) << "shape=" << shape;
  }
}

TEST(RngTest, DirichletSumsToOneWithExpectedMean) {
  Rng rng(23);
  std::vector<double> alpha = {1.0, 2.0, 7.0};
  std::vector<double> mean(3, 0.0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const auto d = rng.Dirichlet(alpha);
    EXPECT_NEAR(d[0] + d[1] + d[2], 1.0, 1e-12);
    for (int k = 0; k < 3; ++k) mean[k] += d[k];
  }
  EXPECT_NEAR(mean[0] / n, 0.1, 0.01);
  EXPECT_NEAR(mean[1] / n, 0.2, 0.01);
  EXPECT_NEAR(mean[2] / n, 0.7, 0.01);
}

TEST(RngTest, PoissonMeanMatchesSmallAndLargeLambda) {
  Rng rng(29);
  for (double lambda : {0.5, 4.0, 60.0}) {
    const int n = 30000;
    double sum = 0.0;
    for (int i = 0; i < n; ++i) sum += rng.Poisson(lambda);
    EXPECT_NEAR(sum / n, lambda, 0.05 * lambda + 0.05) << lambda;
  }
}

TEST(RngTest, PoissonZeroLambda) {
  Rng rng(31);
  EXPECT_EQ(rng.Poisson(0.0), 0);
}

TEST(RngTest, DiscreteFollowsWeights) {
  Rng rng(37);
  std::vector<double> w = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.Discrete(w)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(41);
  std::vector<int> v(50);
  std::iota(v.begin(), v.end(), 0);
  auto original = v;
  rng.Shuffle(&v);
  EXPECT_NE(v, original);  // Astronomically unlikely to be identity.
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, original);
}

TEST(RngTest, BernoulliProbability) {
  Rng rng(43);
  int hits = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) hits += rng.Bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

}  // namespace
}  // namespace crowdselect
