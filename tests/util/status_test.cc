#include "util/status.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
  EXPECT_TRUE(s.message().empty());
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsInvalidArgument());
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, AllPredicatesMatchTheirFactories) {
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::AlreadyExists("x").IsAlreadyExists());
  EXPECT_TRUE(Status::OutOfRange("x").IsOutOfRange());
  EXPECT_TRUE(Status::FailedPrecondition("x").IsFailedPrecondition());
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_TRUE(Status::NotConverged("x").IsNotConverged());
  EXPECT_TRUE(Status::Internal("x").IsInternal());
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kCorruption), "Corruption");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kNotConverged), "NotConverged");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("gone"));
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyTypes) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(5));
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

Status FailingHelper() { return Status::IOError("disk"); }

Status PropagationDemo() {
  CS_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(StatusMacroTest, ReturnNotOkPropagates) {
  EXPECT_TRUE(PropagationDemo().IsIOError());
}

Result<int> ProducesValue() { return 10; }
Result<int> ProducesError() { return Status::OutOfRange("nope"); }

Result<int> AssignOrReturnDemo(bool fail) {
  int v = 0;
  if (fail) {
    CS_ASSIGN_OR_RETURN(v, ProducesError());
  } else {
    CS_ASSIGN_OR_RETURN(v, ProducesValue());
  }
  return v + 1;
}

TEST(StatusMacroTest, AssignOrReturnUnwrapsAndPropagates) {
  auto ok = AssignOrReturnDemo(false);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 11);
  auto err = AssignOrReturnDemo(true);
  ASSERT_FALSE(err.ok());
  EXPECT_TRUE(err.status().IsOutOfRange());
}

}  // namespace
}  // namespace crowdselect
