#include "util/serialization.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

namespace crowdselect {
namespace {

TEST(SerializationTest, RoundTripScalars) {
  BinaryWriter w;
  w.WriteU8(7);
  w.WriteU32(123456);
  w.WriteU64(0xDEADBEEFCAFEULL);
  w.WriteI64(-42);
  w.WriteDouble(3.14159);
  w.WriteString("hello");

  BinaryReader r(w.Release());
  uint8_t u8;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  std::string s;
  ASSERT_TRUE(r.ReadU8(&u8).ok());
  ASSERT_TRUE(r.ReadU32(&u32).ok());
  ASSERT_TRUE(r.ReadU64(&u64).ok());
  ASSERT_TRUE(r.ReadI64(&i64).ok());
  ASSERT_TRUE(r.ReadDouble(&d).ok());
  ASSERT_TRUE(r.ReadString(&s).ok());
  EXPECT_EQ(u8, 7);
  EXPECT_EQ(u32, 123456u);
  EXPECT_EQ(u64, 0xDEADBEEFCAFEULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_EQ(s, "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializationTest, RoundTripVectors) {
  BinaryWriter w;
  w.WriteDoubleVec({1.5, -2.5, 0.0});
  w.WriteU32Vec({9, 8, 7, 6});
  w.WriteDoubleVec({});

  BinaryReader r(w.Release());
  std::vector<double> dv;
  std::vector<uint32_t> uv;
  std::vector<double> empty;
  ASSERT_TRUE(r.ReadDoubleVec(&dv).ok());
  ASSERT_TRUE(r.ReadU32Vec(&uv).ok());
  ASSERT_TRUE(r.ReadDoubleVec(&empty).ok());
  EXPECT_EQ(dv, (std::vector<double>{1.5, -2.5, 0.0}));
  EXPECT_EQ(uv, (std::vector<uint32_t>{9, 8, 7, 6}));
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(r.AtEnd());
}

TEST(SerializationTest, TruncatedBufferIsCorruption) {
  BinaryWriter w;
  w.WriteU64(99);
  std::string buf = w.Release();
  buf.resize(buf.size() - 1);
  BinaryReader r(std::move(buf));
  uint64_t v;
  EXPECT_TRUE(r.ReadU64(&v).IsCorruption());
}

TEST(SerializationTest, OversizedStringLengthIsCorruption) {
  BinaryWriter w;
  w.WriteU64(1ULL << 40);  // Claims a petabyte string.
  BinaryReader r(w.Release());
  std::string s;
  EXPECT_TRUE(r.ReadString(&s).IsCorruption());
}

TEST(SerializationTest, OversizedVectorLengthIsCorruption) {
  BinaryWriter w;
  w.WriteU64(1ULL << 40);
  BinaryReader r(w.Release());
  std::vector<double> v;
  EXPECT_TRUE(r.ReadDoubleVec(&v).IsCorruption());
}

TEST(SerializationTest, OverflowingVectorLengthIsCorruption) {
  // Regression: a count whose byte size wraps uint64 (n * sizeof(double)
  // overflows to something small) must not sneak past the guard.
  BinaryWriter w;
  w.WriteU64(0x2000000000000001ULL);  // * 8 wraps to 8.
  w.WriteDouble(1.0);
  BinaryReader r(w.Release());
  std::vector<double> v;
  EXPECT_TRUE(r.ReadDoubleVec(&v).IsCorruption());

  BinaryWriter w32;
  w32.WriteU64(0x4000000000000001ULL);  // * 4 wraps to 4.
  w32.WriteU32(7);
  BinaryReader r32(w32.Release());
  std::vector<uint32_t> v32;
  EXPECT_TRUE(r32.ReadU32Vec(&v32).IsCorruption());
}

TEST(SerializationTest, FileRoundTrip) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "cs_serialization_test.bin")
          .string();
  BinaryWriter w;
  w.WriteString("persisted");
  w.WriteDouble(2.5);
  ASSERT_TRUE(w.WriteToFile(path).ok());

  auto reader = BinaryReader::FromFile(path);
  ASSERT_TRUE(reader.ok());
  std::string s;
  double d;
  ASSERT_TRUE(reader->ReadString(&s).ok());
  ASSERT_TRUE(reader->ReadDouble(&d).ok());
  EXPECT_EQ(s, "persisted");
  EXPECT_DOUBLE_EQ(d, 2.5);
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileIsIOError) {
  auto reader = BinaryReader::FromFile("/nonexistent/path/x.bin");
  ASSERT_FALSE(reader.ok());
  EXPECT_TRUE(reader.status().IsIOError());
}

}  // namespace
}  // namespace crowdselect
