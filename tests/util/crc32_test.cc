#include "util/crc32.h"

#include <gtest/gtest.h>

#include <string>

namespace crowdselect {
namespace {

TEST(Crc32Test, KnownVectors) {
  // Standard CRC-32C (Castagnoli) check values.
  EXPECT_EQ(Crc32c("", 0), 0x00000000u);
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c("a"), 0xC1D04330u);
  EXPECT_EQ(Crc32c("abc"), 0x364B3FB7u);
  EXPECT_EQ(Crc32c("The quick brown fox jumps over the lazy dog"),
            0x22620404u);
  const std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros), 0x8A9136AAu);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "write-ahead logging for the crowd database";
  for (size_t split = 0; split <= data.size(); ++split) {
    const uint32_t first = Crc32c(data.data(), split);
    const uint32_t whole = Crc32c(data.data() + split, data.size() - split,
                                  first);
    EXPECT_EQ(whole, Crc32c(data)) << "split at " << split;
  }
}

TEST(Crc32Test, SingleBitFlipsChangeTheChecksum) {
  std::string data = "framed wal record payload";
  const uint32_t clean = Crc32c(data);
  for (size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
      EXPECT_NE(Crc32c(data), clean) << "byte " << i << " bit " << bit;
      data[i] = static_cast<char>(data[i] ^ (1 << bit));
    }
  }
}

TEST(Crc32Test, MaskRoundTripsAndSeparatesValues) {
  for (uint32_t crc : {0u, 1u, 0xE3069283u, 0xFFFFFFFFu, 0xa282ead8u}) {
    EXPECT_EQ(UnmaskCrc32(MaskCrc32(crc)), crc);
    // The point of masking: a stored CRC is not its own checksum.
    EXPECT_NE(MaskCrc32(crc), crc);
  }
}

}  // namespace
}  // namespace crowdselect
