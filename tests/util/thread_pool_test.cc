#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace crowdselect {
namespace {

TEST(ThreadPoolTest, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallAndEmpty) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadedPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // Single worker executes FIFO.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForResultsMatchSerial) {
  ThreadPool pool(0);  // Hardware concurrency.
  std::vector<double> out(512);
  pool.ParallelFor(out.size(), [&](size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

}  // namespace
}  // namespace crowdselect
