#include "util/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <thread>
#include <vector>

namespace crowdselect {
namespace {

TEST(ThreadPoolTest, RunsSubmittedJobs) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, WaitIsReusable) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 1);
  pool.Submit([&counter] { counter.fetch_add(1); });
  pool.Wait();
  EXPECT_EQ(counter.load(), 2);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(hits.size(), [&](size_t i) { hits[i].fetch_add(1); });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForSmallAndEmpty) {
  ThreadPool pool(4);
  int calls = 0;
  pool.ParallelFor(0, [&](size_t) { ++calls; });
  EXPECT_EQ(calls, 0);
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    ++calls;
  });
  EXPECT_EQ(calls, 1);
}

TEST(ThreadPoolTest, SingleThreadedPoolStillWorks) {
  ThreadPool pool(1);
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&order, i] { order.push_back(i); });
  }
  pool.Wait();
  // Single worker executes FIFO.
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, DestructorDrainsOutstandingWork) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(3);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }
  EXPECT_EQ(counter.load(), 50);
}

TEST(ThreadPoolTest, ParallelForResultsMatchSerial) {
  ThreadPool pool(0);  // Hardware concurrency.
  std::vector<double> out(512);
  pool.ParallelFor(out.size(), [&](size_t i) {
    out[i] = static_cast<double>(i) * 2.0;
  });
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i], static_cast<double>(i) * 2.0);
  }
}

TEST(ThreadPoolTest, GrainedParallelForCoversEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  for (size_t grain : {0u, 1u, 7u, 64u, 5000u}) {
    std::vector<std::atomic<int>> hits(1000);
    pool.ParallelFor(hits.size(), grain, [&](size_t i) { hits[i].fetch_add(1); });
    for (auto& h : hits) ASSERT_EQ(h.load(), 1) << "grain " << grain;
  }
}

TEST(ThreadPoolTest, ParallelForChunksPartitionTheRangeExactly) {
  ThreadPool pool(4);
  for (size_t n : {0u, 1u, 5u, 100u, 1001u}) {
    for (size_t grain : {1u, 7u, 250u, 2000u}) {
      std::vector<std::atomic<int>> hits(n);
      std::atomic<size_t> chunks{0};
      pool.ParallelForChunks(n, grain, [&](size_t begin, size_t end) {
        ASSERT_LT(begin, end);
        ASSERT_LE(end, n);
        ASSERT_LE(end - begin, grain);
        chunks.fetch_add(1);
        for (size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
      });
      for (auto& h : hits) {
        ASSERT_EQ(h.load(), 1) << "n=" << n << " grain=" << grain;
      }
      EXPECT_EQ(chunks.load(), (n + grain - 1) / grain);
    }
  }
}

TEST(ThreadPoolTest, ChunkedOverloadsTreatZeroGrainAsOne) {
  ThreadPool pool(2);
  std::atomic<int> calls{0};
  pool.ParallelForChunks(5, 0, [&](size_t begin, size_t end) {
    EXPECT_EQ(end, begin + 1);
    calls.fetch_add(1);
  });
  EXPECT_EQ(calls.load(), 5);
}

TEST(ThreadPoolTest, SingleChunkRunsInline) {
  ThreadPool pool(4);
  const auto caller = std::this_thread::get_id();
  std::thread::id executed_on;
  // grain >= n: one chunk, no dispatch overhead, runs on the caller.
  pool.ParallelForChunks(100, 1000, [&](size_t begin, size_t end) {
    EXPECT_EQ(begin, 0u);
    EXPECT_EQ(end, 100u);
    executed_on = std::this_thread::get_id();
  });
  EXPECT_EQ(executed_on, caller);
}

}  // namespace
}  // namespace crowdselect
