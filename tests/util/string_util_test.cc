#include "util/string_util.h"

#include <gtest/gtest.h>

namespace crowdselect {
namespace {

TEST(StringUtilTest, ToLowerAscii) {
  EXPECT_EQ(ToLowerAscii("B+ Tree Over B Tree"), "b+ tree over b tree");
  EXPECT_EQ(ToLowerAscii(""), "");
  EXPECT_EQ(ToLowerAscii("already lower 123"), "already lower 123");
}

TEST(StringUtilTest, SplitAnyDropsEmptyPieces) {
  EXPECT_EQ(SplitAny("a,b,,c", ","),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitAny("  x  y ", " "), (std::vector<std::string>{"x", "y"}));
  EXPECT_TRUE(SplitAny("", ",").empty());
  EXPECT_EQ(SplitAny("a;b c", "; "), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(StringUtilTest, TrimAscii) {
  EXPECT_EQ(TrimAscii("  hi  "), "hi");
  EXPECT_EQ(TrimAscii("hi"), "hi");
  EXPECT_EQ(TrimAscii("   "), "");
  EXPECT_EQ(TrimAscii("\t\na b\n"), "a b");
}

TEST(StringUtilTest, StringPrintfFormats) {
  EXPECT_EQ(StringPrintf("w=%u s=%.2f", 7u, 1.5), "w=7 s=1.50");
  EXPECT_EQ(StringPrintf("%s", ""), "");
}

TEST(StringUtilTest, Join) {
  EXPECT_EQ(Join({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(Join({"solo"}, ","), "solo");
  EXPECT_EQ(Join({}, ","), "");
}

}  // namespace
}  // namespace crowdselect
