#include "util/cpuid.h"

#include <gtest/gtest.h>

#include <cstdlib>
#include <string>

namespace crowdselect {
namespace {

/// Restores the prior CROWDSELECT_FORCE_SCALAR value on scope exit, so
/// tests cannot leak override state into each other (or into a test
/// runner that set it deliberately).
class ScopedForceScalarEnv {
 public:
  explicit ScopedForceScalarEnv(const char* value) {
    const char* prior = std::getenv(kForceScalarEnvVar);
    had_prior_ = prior != nullptr;
    if (had_prior_) prior_ = prior;
    if (value == nullptr) {
      unsetenv(kForceScalarEnvVar);
    } else {
      setenv(kForceScalarEnvVar, value, /*overwrite=*/1);
    }
  }
  ~ScopedForceScalarEnv() {
    if (had_prior_) {
      setenv(kForceScalarEnvVar, prior_.c_str(), /*overwrite=*/1);
    } else {
      unsetenv(kForceScalarEnvVar);
    }
  }

 private:
  bool had_prior_ = false;
  std::string prior_;
};

TEST(CpuidTest, DetectionIsStableAcrossCalls) {
  const CpuFeatures& first = DetectCpuFeatures();
  const CpuFeatures& second = DetectCpuFeatures();
  // Cached static: same object, same answers.
  EXPECT_EQ(&first, &second);
  EXPECT_EQ(first.avx2, second.avx2);
  EXPECT_EQ(first.fma, second.fma);
  EXPECT_EQ(first.neon, second.neon);
}

TEST(CpuidTest, FeatureCombinationsArePlausible) {
  const CpuFeatures& features = DetectCpuFeatures();
#if defined(__aarch64__)
  // Advanced SIMD is architecturally mandatory on AArch64.
  EXPECT_TRUE(features.neon);
  EXPECT_FALSE(features.avx2);
#else
  EXPECT_FALSE(features.neon);
#endif
#if !defined(__x86_64__) && !defined(__i386__)
  EXPECT_FALSE(features.avx2);
  EXPECT_FALSE(features.fma);
#endif
}

TEST(CpuidTest, ForceScalarUnsetMeansNotForced) {
  ScopedForceScalarEnv env(nullptr);
  EXPECT_FALSE(ScalarKernelForced());
}

TEST(CpuidTest, ForceScalarHonorsTruthyValues) {
  {
    ScopedForceScalarEnv env("1");
    EXPECT_TRUE(ScalarKernelForced());
  }
  {
    ScopedForceScalarEnv env("yes");
    EXPECT_TRUE(ScalarKernelForced());
  }
}

TEST(CpuidTest, ForceScalarTreatsEmptyAndZeroAsOff) {
  {
    ScopedForceScalarEnv env("");
    EXPECT_FALSE(ScalarKernelForced());
  }
  {
    ScopedForceScalarEnv env("0");
    EXPECT_FALSE(ScalarKernelForced());
  }
}

TEST(CpuidTest, ForceScalarIsReadPerCall) {
  // Unlike feature detection, the override must track the live
  // environment: a long-lived process can flip it between engine builds.
  ScopedForceScalarEnv env("1");
  EXPECT_TRUE(ScalarKernelForced());
  setenv(kForceScalarEnvVar, "0", /*overwrite=*/1);
  EXPECT_FALSE(ScalarKernelForced());
}

}  // namespace
}  // namespace crowdselect
