#include "util/logging.h"

#include <gtest/gtest.h>

#include <string>
#include <utility>
#include <vector>

namespace crowdselect {
namespace {

// Restores the stderr default and the default threshold on exit so other
// tests in the binary see pristine logging state.
class LoggingTest : public ::testing::Test {
 protected:
  void TearDown() override {
    SetLogSink(nullptr);
    SetLogLevel(LogLevel::kInfo);
  }
};

TEST_F(LoggingTest, SinkCapturesFormattedLines) {
  std::vector<std::pair<LogLevel, std::string>> captured;
  SetLogSink([&](LogLevel level, std::string_view line) {
    captured.emplace_back(level, std::string(line));
  });

  CS_LOG(Info) << "hello " << 42;
  CS_LOG(Warning) << "careful";

  ASSERT_EQ(captured.size(), 2u);
  EXPECT_EQ(captured[0].first, LogLevel::kInfo);
  EXPECT_NE(captured[0].second.find("hello 42"), std::string::npos);
  EXPECT_EQ(captured[1].first, LogLevel::kWarning);
  EXPECT_NE(captured[1].second.find("careful"), std::string::npos);
}

TEST_F(LoggingTest, SinkRespectsLogLevelThreshold) {
  std::vector<std::string> captured;
  SetLogSink([&](LogLevel, std::string_view line) {
    captured.emplace_back(line);
  });
  SetLogLevel(LogLevel::kWarning);
  CS_LOG(Info) << "dropped";
  CS_LOG(Warning) << "kept";
  ASSERT_EQ(captured.size(), 1u);
  EXPECT_NE(captured[0].find("kept"), std::string::npos);
}

TEST_F(LoggingTest, NullSinkRestoresStderrWithoutCrashing) {
  SetLogSink([](LogLevel, std::string_view) {});
  SetLogSink(nullptr);
  CS_LOG(Info) << "back to stderr";  // Must not call a moved-from sink.
}

TEST_F(LoggingTest, CheckPassesWithoutLogging) {
  std::vector<std::string> captured;
  SetLogSink([&](LogLevel, std::string_view line) {
    captured.emplace_back(line);
  });
  CS_CHECK(1 + 1 == 2) << "never evaluated";
  EXPECT_TRUE(captured.empty());
}

TEST_F(LoggingTest, CheckDoesNotHijackEnclosingElse) {
  // Regression test for the classic dangling-else hazard: CS_CHECK
  // expands to a single expression, so the `else` below must bind to the
  // outer `if`, not to anything inside the macro.
  bool reached_else = false;
  if (false)
    CS_CHECK(true) << "skipped";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);

  // And the true branch must not fall through into the else.
  bool reached_then = false;
  reached_else = false;
  if (true)
    CS_CHECK(true), reached_then = true;
  else
    reached_else = true;
  EXPECT_TRUE(reached_then);
  EXPECT_FALSE(reached_else);
}

TEST_F(LoggingTest, FailedCheckAborts) {
  EXPECT_DEATH(CS_CHECK(false) << "boom", "Check failed: false");
}

TEST_F(LoggingTest, FailedCheckStreamsOperandsLazily) {
  int evaluations = 0;
  auto count = [&evaluations] {
    ++evaluations;
    return "side effect";
  };
  CS_CHECK(true) << count();
  // The message expression after a passing check is never evaluated.
  EXPECT_EQ(evaluations, 0);
}

TEST_F(LoggingTest, CheckEvaluatesConditionExactlyOnce) {
  // A condition with side effects (pop from a queue, fetch_add, ...) must
  // run exactly once whether the macro expands to one branch or another.
  int evaluations = 0;
  CS_CHECK(++evaluations == 1) << "never printed";
  EXPECT_EQ(evaluations, 1);
}

TEST_F(LoggingTest, DcheckEvaluatesConditionAtMostOnce) {
  int evaluations = 0;
  CS_DCHECK(++evaluations == 1) << "never printed";
#if CS_DCHECK_IS_ON()
  EXPECT_EQ(evaluations, 1);
#else
  // Release builds compile the condition but never run it.
  EXPECT_EQ(evaluations, 0);
#endif
}

TEST_F(LoggingTest, DcheckCompiledOutInReleaseDoesNotAbort) {
#if CS_DCHECK_IS_ON()
  EXPECT_DEATH(CS_DCHECK(false) << "boom", "Check failed:");
#else
  CS_DCHECK(false) << "ignored in release";  // Must not abort.
#endif
}

TEST_F(LoggingTest, DcheckDoesNotHijackEnclosingElse) {
  bool reached_else = false;
  if (false)
    CS_DCHECK(true) << "skipped";
  else
    reached_else = true;
  EXPECT_TRUE(reached_else);
}

}  // namespace
}  // namespace crowdselect
