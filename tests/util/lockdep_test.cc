#include "util/lockdep.h"

#include <gtest/gtest.h>

#include <thread>

namespace crowdselect::lockdep {
namespace {

// The Tracker core is compiled in every build flavor (only the mutex
// wrappers compile away in Release), so these tests run everywhere.
class LockdepTrackerTest : public ::testing::Test {
 protected:
  void SetUp() override { Tracker::Global().ResetGraphForTest(); }
  void TearDown() override {
    ASSERT_EQ(Tracker::Global().HeldByCurrentThread(), 0u)
        << "test leaked a held lock";
    Tracker::Global().ResetGraphForTest();
  }

  LockId Node(const char* name, uint32_t rank = 0) {
    return LockId{RegisterLockClass(name), rank};
  }
};

TEST_F(LockdepTrackerTest, RegisterLockClassIsIdempotent) {
  const LockClassId a = RegisterLockClass("lockdep_test.idempotent");
  const LockClassId b = RegisterLockClass("lockdep_test.idempotent");
  EXPECT_EQ(a, b);
  EXPECT_EQ(LockClassName(a), "lockdep_test.idempotent");
  EXPECT_NE(a, RegisterLockClass("lockdep_test.other"));
  EXPECT_EQ(LockClassName(0xFFFFFFFFu), "<unknown>");
}

TEST_F(LockdepTrackerTest, ConsistentOrderIsAccepted) {
  Tracker& t = Tracker::Global();
  const LockId a = Node("lockdep_test.a");
  const LockId b = Node("lockdep_test.b");
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(t.OnAcquire(a, /*shared=*/false).ok());
    ASSERT_TRUE(t.OnAcquire(b, /*shared=*/false).ok());
    EXPECT_EQ(t.HeldByCurrentThread(), 2u);
    t.OnRelease(b);
    t.OnRelease(a);
  }
}

TEST_F(LockdepTrackerTest, AbBaInversionDetected) {
  Tracker& t = Tracker::Global();
  const LockId a = Node("lockdep_test.a");
  const LockId b = Node("lockdep_test.b");
  // Record the order a -> b.
  ASSERT_TRUE(t.OnAcquire(a, false).ok());
  ASSERT_TRUE(t.OnAcquire(b, false).ok());
  t.OnRelease(b);
  t.OnRelease(a);
  // The inversion b -> a must be rejected even though no deadlock
  // actually occurs in this single-threaded run.
  ASSERT_TRUE(t.OnAcquire(b, false).ok());
  const Status st = t.OnAcquire(a, false);
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  EXPECT_NE(st.message().find("lockdep_test.a"), std::string::npos);
  EXPECT_NE(st.message().find("lockdep_test.b"), std::string::npos);
  // The rejected acquisition is not on the held stack.
  EXPECT_EQ(t.HeldByCurrentThread(), 1u);
  t.OnRelease(b);
}

TEST_F(LockdepTrackerTest, TransitiveCycleDetected) {
  Tracker& t = Tracker::Global();
  const LockId a = Node("lockdep_test.a");
  const LockId b = Node("lockdep_test.b");
  const LockId c = Node("lockdep_test.c");
  // a -> b and b -> c recorded on separate paths.
  ASSERT_TRUE(t.OnAcquire(a, false).ok());
  ASSERT_TRUE(t.OnAcquire(b, false).ok());
  t.OnRelease(b);
  t.OnRelease(a);
  ASSERT_TRUE(t.OnAcquire(b, false).ok());
  ASSERT_TRUE(t.OnAcquire(c, false).ok());
  t.OnRelease(c);
  t.OnRelease(b);
  // c -> a closes a cycle through b.
  ASSERT_TRUE(t.OnAcquire(c, false).ok());
  EXPECT_TRUE(t.OnAcquire(a, false).IsFailedPrecondition());
  t.OnRelease(c);
}

TEST_F(LockdepTrackerTest, SharedReentrancyAllowed) {
  Tracker& t = Tracker::Global();
  const LockId s = Node("lockdep_test.shared");
  ASSERT_TRUE(t.OnAcquire(s, /*shared=*/true).ok());
  ASSERT_TRUE(t.OnAcquire(s, /*shared=*/true).ok());
  // Re-entries fold into one held entry; both releases must balance.
  EXPECT_EQ(t.HeldByCurrentThread(), 1u);
  t.OnRelease(s);
  EXPECT_EQ(t.HeldByCurrentThread(), 1u);
  t.OnRelease(s);
  EXPECT_EQ(t.HeldByCurrentThread(), 0u);
}

TEST_F(LockdepTrackerTest, ExclusiveReacquisitionRejected) {
  Tracker& t = Tracker::Global();
  const LockId m = Node("lockdep_test.m");
  ASSERT_TRUE(t.OnAcquire(m, false).ok());
  EXPECT_TRUE(t.OnAcquire(m, false).IsFailedPrecondition());
  t.OnRelease(m);
}

TEST_F(LockdepTrackerTest, SharedToExclusiveUpgradeRejected) {
  Tracker& t = Tracker::Global();
  const LockId s = Node("lockdep_test.shared");
  ASSERT_TRUE(t.OnAcquire(s, /*shared=*/true).ok());
  // Upgrading would deadlock against another reader doing the same.
  EXPECT_TRUE(t.OnAcquire(s, /*shared=*/false).IsFailedPrecondition());
  t.OnRelease(s);
}

TEST_F(LockdepTrackerTest, RanksOfSameClassAreDistinctNodes) {
  Tracker& t = Tracker::Global();
  const LockId shard0 = Node("lockdep_test.shard", 0);
  const LockId shard1 = Node("lockdep_test.shard", 1);
  ASSERT_TRUE(t.OnAcquire(shard0, true).ok());
  ASSERT_TRUE(t.OnAcquire(shard1, true).ok());
  t.OnRelease(shard1);
  t.OnRelease(shard0);
  ASSERT_TRUE(t.OnAcquire(shard1, true).ok());
  const Status st = t.OnAcquire(shard0, true);
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  // The report names the instance rank, not just the class.
  EXPECT_NE(st.message().find("lockdep_test.shard[1]"), std::string::npos);
  t.OnRelease(shard1);
}

TEST_F(LockdepTrackerTest, OrderIsGlobalAcrossThreads) {
  Tracker& t = Tracker::Global();
  const LockId a = Node("lockdep_test.a");
  const LockId b = Node("lockdep_test.b");
  // Thread 1 records a -> b; the held stack is thread-local but the edge
  // set is global, so this thread's inversion is still caught.
  std::thread recorder([&] {
    ASSERT_TRUE(t.OnAcquire(a, false).ok());
    ASSERT_TRUE(t.OnAcquire(b, false).ok());
    t.OnRelease(b);
    t.OnRelease(a);
  });
  recorder.join();
  ASSERT_TRUE(t.OnAcquire(b, false).ok());
  EXPECT_TRUE(t.OnAcquire(a, false).IsFailedPrecondition());
  t.OnRelease(b);
}

TEST_F(LockdepTrackerTest, CheckNoLocksHeld) {
  Tracker& t = Tracker::Global();
  EXPECT_TRUE(t.CheckNoLocksHeld("test path").ok());
  const LockId m = Node("lockdep_test.m");
  ASSERT_TRUE(t.OnAcquire(m, false).ok());
  const Status st = t.CheckNoLocksHeld("test path");
  EXPECT_TRUE(st.IsFailedPrecondition()) << st.ToString();
  EXPECT_NE(st.message().find("test path"), std::string::npos);
  EXPECT_NE(st.message().find("lockdep_test.m"), std::string::npos);
  t.OnRelease(m);
}

TEST_F(LockdepTrackerTest, ResetClearsRecordedEdges) {
  Tracker& t = Tracker::Global();
  const LockId a = Node("lockdep_test.a");
  const LockId b = Node("lockdep_test.b");
  ASSERT_TRUE(t.OnAcquire(a, false).ok());
  ASSERT_TRUE(t.OnAcquire(b, false).ok());
  t.OnRelease(b);
  t.OnRelease(a);
  t.ResetGraphForTest();
  ASSERT_TRUE(t.OnAcquire(b, false).ok());
  EXPECT_TRUE(t.OnAcquire(a, false).ok());
  t.OnRelease(a);
  t.OnRelease(b);
}

#if CROWDSELECT_LOCKDEP_ENABLED
TEST_F(LockdepTrackerTest, WrapperMutexesTrackThroughStdLocks) {
  SharedMutex outer("lockdep_test.wrapper.outer");
  Mutex inner("lockdep_test.wrapper.inner");
  {
    std::shared_lock read(outer);
    std::lock_guard guard(inner);
    EXPECT_EQ(Tracker::Global().HeldByCurrentThread(), 2u);
  }
  EXPECT_EQ(Tracker::Global().HeldByCurrentThread(), 0u);
}

TEST_F(LockdepTrackerTest, AnonymousInstancesDoNotAlias) {
  // Two default-constructed wrappers get distinct ranks, so holding both
  // is not reported as re-acquisition of one node.
  Mutex first;
  Mutex second;
  std::lock_guard a(first);
  std::lock_guard b(second);
  EXPECT_EQ(Tracker::Global().HeldByCurrentThread(), 2u);
}
#endif  // CROWDSELECT_LOCKDEP_ENABLED

}  // namespace
}  // namespace crowdselect::lockdep
