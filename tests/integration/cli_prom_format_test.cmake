# Prometheus exposition-format conformance check, run as a ctest:
#   cmake -DCLI=<crowdselect_cli> -DWORK_DIR=<scratch dir> \
#         -P cli_prom_format_test.cmake
#
# Runs a small simulate with every telemetry sink enabled, then walks
# the emitted .prom file line by line and enforces what a scraper needs:
#   * every sample is preceded by "# HELP" and "# TYPE" for its family,
#     in that order, and samples never appear under a foreign family;
#   * no family ships the "(no description registered)" fallback help —
#     every exported metric must be documented in the registry;
#   * histogram bucket counts are cumulative (non-decreasing), end in
#     le="+Inf", and the +Inf bucket equals the _count sample;
#   * every histogram family carries exactly one _sum and one _count.

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=... to cli_prom_format_test.cmake")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/world")

execute_process(
  COMMAND "${CLI}" generate --platform stack --out "${WORK_DIR}/world" --seed 3
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli generate failed (rc=${rc})")
endif()

file(WRITE "${WORK_DIR}/rules.txt"
  "alert fmt_probe when quality.tdpm.rmse.mean > 99 for 2\n")

execute_process(
  COMMAND "${CLI}" simulate --data "${WORK_DIR}/world"
          --k 4 --iters 4 --tasks 40 --top 8 --quality-window 10
          --alert-rules "${WORK_DIR}/rules.txt"
          --quality-out "${WORK_DIR}/quality.jsonl"
          --prom-out "${WORK_DIR}/metrics.prom"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "simulate failed (rc=${rc})")
endif()

file(READ "${WORK_DIR}/metrics.prom" prom)
string(REPLACE ";" "\\;" prom "${prom}")
string(REPLACE "\n" ";" lines "${prom}")

set(family "")            # Family currently allowed to emit samples.
set(family_type "")
set(help_pending "")      # Set by # HELP, consumed by # TYPE.
set(prev_bucket -1)       # Last cumulative bucket count in this family.
set(last_bucket_le "")
set(last_bucket_value -1)
set(saw_sum FALSE)
set(saw_count FALSE)
set(families 0)
set(histograms 0)
set(lineno 0)

# Close out the current family; histograms must have completed their
# bucket run and shipped _sum/_count.
macro(finish_family)
  if(family_type STREQUAL "histogram")
    if(NOT last_bucket_le STREQUAL "+Inf")
      message(FATAL_ERROR
        "histogram ${family} does not end in le=\"+Inf\" "
        "(last le=\"${last_bucket_le}\")")
    endif()
    if(NOT saw_sum OR NOT saw_count)
      message(FATAL_ERROR
        "histogram ${family} missing _sum or _count "
        "(sum=${saw_sum} count=${saw_count})")
    endif()
  endif()
endmacro()

foreach(line IN LISTS lines)
  math(EXPR lineno "${lineno} + 1")
  if(line STREQUAL "")
    continue()
  endif()

  if(line MATCHES "^# HELP ([A-Za-z_:][A-Za-z0-9_:]*) (.+)$")
    finish_family()
    set(help_pending "${CMAKE_MATCH_1}")
    set(family "")
    if(CMAKE_MATCH_2 MATCHES "no description registered")
      message(FATAL_ERROR
        "line ${lineno}: ${help_pending} has no registry description")
    endif()
    continue()
  endif()

  if(line MATCHES "^# TYPE ([A-Za-z_:][A-Za-z0-9_:]*) (counter|gauge|histogram)$")
    if(NOT CMAKE_MATCH_1 STREQUAL help_pending)
      message(FATAL_ERROR
        "line ${lineno}: TYPE for ${CMAKE_MATCH_1} not preceded by its "
        "HELP (pending: '${help_pending}')")
    endif()
    set(family "${CMAKE_MATCH_1}")
    set(family_type "${CMAKE_MATCH_2}")
    set(help_pending "")
    set(prev_bucket -1)
    set(last_bucket_le "")
    set(last_bucket_value -1)
    set(saw_sum FALSE)
    set(saw_count FALSE)
    math(EXPR families "${families} + 1")
    if(family_type STREQUAL "histogram")
      math(EXPR histograms "${histograms} + 1")
    endif()
    continue()
  endif()

  if(line MATCHES "^#")
    message(FATAL_ERROR "line ${lineno}: unrecognized comment: ${line}")
  endif()

  # Sample line: <name>[{labels}] <value>
  if(NOT line MATCHES "^([A-Za-z_:][A-Za-z0-9_:]*)(\\{[^}]*\\})? (.+)$")
    message(FATAL_ERROR "line ${lineno}: unparseable sample: ${line}")
  endif()
  set(sample_name "${CMAKE_MATCH_1}")
  set(sample_labels "${CMAKE_MATCH_2}")
  set(sample_value "${CMAKE_MATCH_3}")
  if(family STREQUAL "")
    message(FATAL_ERROR
      "line ${lineno}: sample ${sample_name} before any HELP/TYPE")
  endif()

  if(family_type STREQUAL "histogram")
    if(sample_name STREQUAL "${family}_bucket")
      if(NOT sample_labels MATCHES "le=\"([^\"]+)\"")
        message(FATAL_ERROR "line ${lineno}: bucket without le label: ${line}")
      endif()
      set(last_bucket_le "${CMAKE_MATCH_1}")
      if(NOT sample_value MATCHES "^[0-9]+$")
        message(FATAL_ERROR
          "line ${lineno}: bucket count not an integer: ${sample_value}")
      endif()
      if(sample_value LESS prev_bucket)
        message(FATAL_ERROR
          "line ${lineno}: bucket counts not cumulative in ${family}: "
          "${sample_value} after ${prev_bucket}")
      endif()
      set(prev_bucket "${sample_value}")
      set(last_bucket_value "${sample_value}")
    elseif(sample_name STREQUAL "${family}_sum")
      set(saw_sum TRUE)
    elseif(sample_name STREQUAL "${family}_count")
      set(saw_count TRUE)
      if(NOT sample_value EQUAL last_bucket_value)
        message(FATAL_ERROR
          "line ${lineno}: ${family}_count (${sample_value}) != +Inf "
          "bucket (${last_bucket_value})")
      endif()
    else()
      message(FATAL_ERROR
        "line ${lineno}: sample ${sample_name} inside histogram ${family}")
    endif()
  else()
    if(NOT sample_name STREQUAL family)
      message(FATAL_ERROR
        "line ${lineno}: sample ${sample_name} under family ${family}")
    endif()
  endif()
endforeach()
finish_family()

if(families LESS 20)
  message(FATAL_ERROR "suspiciously few families parsed: ${families}")
endif()
if(histograms LESS 1)
  message(FATAL_ERROR "no histogram family in the exposition")
endif()

# Spot-check a few families this PR is responsible for.
string(REPLACE "\\;" ";" raw "${prom}")
foreach(needle "# TYPE crowdselect_quality_tdpm_rmse_mean gauge"
        "# TYPE crowdselect_alert_state gauge"
        "# HELP crowdselect_serve_queries Queries served")
  if(NOT raw MATCHES "${needle}")
    message(FATAL_ERROR "metrics.prom missing '${needle}'")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "cli_prom_format_test passed (${families} families, "
  "${histograms} histograms)")
