// Full-pipeline integration: generate a platform, train via the crowd
// manager, process incoming tasks through selection -> dispatch ->
// feedback -> incremental retraining.
#include <gtest/gtest.h>

#include <cmath>

#include "crowdselect/crowdselect.h"

namespace crowdselect {
namespace {

PlatformConfig TinyConfig() {
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 25;
  config.world.num_tasks = 100;
  config.world.vocab_size = 120;
  config.world.num_categories = 3;
  return config;
}

TdpmOptions FastTdpm() {
  TdpmOptions options;
  options.num_categories = 3;
  options.max_em_iterations = 10;
  options.seed = 17;
  return options;
}

TEST(EndToEndTest, ManagerPipelineOnSyntheticPlatform) {
  auto dataset = GeneratePlatformDataset(Platform::kQuora, TinyConfig(), 21);
  ASSERT_TRUE(dataset.ok());
  CrowdDatabase& db = dataset->db;
  const size_t tasks_before = db.NumTasks();

  CrowdManager manager(&db, std::make_unique<TdpmSelector>(FastTdpm()));
  ASSERT_TRUE(manager.InferCrowdModel().ok());

  // A dispatcher backed by the ground-truth world: answer quality follows
  // the workers' true skills.
  TdpmGenerator generator(dataset->world.params);
  Rng rng(5);
  TaskDispatcher dispatcher(
      &db,
      [](WorkerId w, const TaskRecord&) {
        return "answer by " + std::to_string(w);
      },
      [&](WorkerId w, const TaskRecord& task, const std::string&) {
        // Feedback = true skill dot folded category + noise, truncated.
        Vector c(3, 0.0);
        if (!task.categories.empty()) c = Vector(task.categories);
        const double perf = dataset->world.draw.worker_skills[w].Dot(c);
        return std::max(0.0, std::round(perf + rng.Normal(0.0, 0.3)));
      });

  auto answers = manager.ProcessTask("word1 word2 word3 word4", 3, &dispatcher);
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers->size(), 3u);
  EXPECT_EQ(db.NumTasks(), tasks_before + 1);
  EXPECT_TRUE(db.GetTask(tasks_before).value()->resolved);

  // Offline workers never selected.
  for (WorkerId w = 0; w < 10; ++w) manager.online_pool()->CheckOut(w);
  auto more = manager.ProcessTask("word5 word6 word7", 5, &dispatcher);
  ASSERT_TRUE(more.ok());
  for (const auto& a : *more) EXPECT_GE(a.worker, 10u);
}

TEST(EndToEndTest, RetrainingPicksUpNewEvidence) {
  auto dataset = GeneratePlatformDataset(Platform::kQuora, TinyConfig(), 22);
  ASSERT_TRUE(dataset.ok());
  CrowdDatabase& db = dataset->db;
  CrowdManager manager(&db, std::make_unique<TdpmSelector>(FastTdpm()));
  manager.set_retrain_interval(3);
  ASSERT_TRUE(manager.InferCrowdModel().ok());

  TaskDispatcher dispatcher(
      &db, [](WorkerId, const TaskRecord&) { return std::string("ans"); },
      [](WorkerId, const TaskRecord&, const std::string&) { return 2.0; });
  const size_t scored_before = db.NumScoredAssignments();
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(
        manager.ProcessTask("word10 word11 word12", 2, &dispatcher).ok());
  }
  EXPECT_EQ(db.NumScoredAssignments(), scored_before + 8);
}

TEST(EndToEndTest, PersistReloadSelectConsistency) {
  auto dataset = GeneratePlatformDataset(Platform::kQuora, TinyConfig(), 23);
  ASSERT_TRUE(dataset.ok());

  // Train, snapshot the model, persist the database.
  TdpmSelector selector(FastTdpm());
  ASSERT_TRUE(selector.Train(dataset->db).ok());
  TdpmModelSnapshot snapshot;
  snapshot.params = selector.fit().params;
  snapshot.workers = selector.fit().state.workers;

  BinaryWriter db_writer;
  CrowdDatabasePersistence::Save(dataset->db, &db_writer);
  BinaryWriter model_writer;
  snapshot.Serialize(&model_writer);

  // Reload both and check selection agrees with the original.
  BinaryReader db_reader(db_writer.Release());
  auto db2 = CrowdDatabasePersistence::Load(&db_reader);
  ASSERT_TRUE(db2.ok());
  BinaryReader model_reader(model_writer.Release());
  auto snap2 = TdpmModelSnapshot::Deserialize(&model_reader);
  ASSERT_TRUE(snap2.ok());

  auto folder = TaskFolder::Create(snap2->params, FastTdpm());
  ASSERT_TRUE(folder.ok());
  const BagOfWords& probe = db2->GetTask(0).value()->bag;
  FoldInResult projected = folder->FoldIn(probe);

  auto original = selector.SelectTopK(probe, 3, db2->OnlineWorkers());
  ASSERT_TRUE(original.ok());
  TopKAccumulator reloaded(3);
  for (WorkerId w : db2->OnlineWorkers()) {
    reloaded.Offer(w, snap2->workers[w].lambda.Dot(projected.category));
  }
  auto reloaded_top = reloaded.Take();
  ASSERT_EQ(reloaded_top.size(), original->size());
  for (size_t i = 0; i < reloaded_top.size(); ++i) {
    EXPECT_EQ(reloaded_top[i].worker, (*original)[i].worker);
    EXPECT_NEAR(reloaded_top[i].score, (*original)[i].score, 1e-9);
  }
}

}  // namespace
}  // namespace crowdselect
