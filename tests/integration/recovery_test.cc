// Statistical recovery: inference run on data drawn from the generative
// model must recover the planted structure well enough to rank workers.
#include <gtest/gtest.h>

#include "util/logging.h"

#include <algorithm>

#include "crowdselect/crowdselect.h"

namespace crowdselect {
namespace {

TEST(RecoveryTest, TdpmRanksTrueBestWorkerAboveChance) {
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 40;
  config.world.num_tasks = 400;
  config.world.vocab_size = 200;
  config.world.num_categories = 4;
  config.world.mean_answers_per_task = 4.0;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 31);
  ASSERT_TRUE(dataset.ok());

  WorkerGroup group = MakeGroup(dataset->db, 1, "Quora");
  SplitOptions split_options;
  split_options.num_test_tasks = 60;
  split_options.min_candidates = 3;
  auto split = MakeSplit(*dataset, group, split_options);
  ASSERT_TRUE(split.ok());

  TdpmOptions options;
  options.num_categories = 4;
  options.max_em_iterations = 15;
  options.seed = 7;
  TdpmSelector selector(options);
  ASSERT_TRUE(selector.Train(split->train_db).ok());

  MetricAccumulator metrics;
  double chance_top1 = 0.0;
  for (const auto& c : split->cases) {
    const BagOfWords& bag = split->train_db.GetTask(c.task).value()->bag;
    auto ranking =
        selector.SelectTopK(bag, c.candidates.size(), c.candidates);
    ASSERT_TRUE(ranking.ok());
    const auto it = std::find_if(
        ranking->begin(), ranking->end(),
        [&](const RankedWorker& r) { return r.worker == c.right_worker; });
    metrics.Add(static_cast<size_t>(it - ranking->begin()), ranking->size());
    chance_top1 += 1.0 / static_cast<double>(c.candidates.size());
  }
  chance_top1 /= static_cast<double>(split->cases.size());

  // Must clearly beat random selection on both metrics.
  EXPECT_GT(metrics.TopK(1), chance_top1 + 0.1)
      << "top1=" << metrics.TopK(1) << " chance=" << chance_top1;
  EXPECT_GT(metrics.MeanAccu(), 0.55);
}

TEST(RecoveryTest, FeedbackAblationHurtsRanking) {
  // A1: with feedback scores replaced by a constant, the skill signal
  // disappears and ranking quality must drop.
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 30;
  config.world.num_tasks = 300;
  config.world.vocab_size = 150;
  config.world.num_categories = 3;
  config.world.mean_answers_per_task = 4.0;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 33);
  ASSERT_TRUE(dataset.ok());
  WorkerGroup group = MakeGroup(dataset->db, 1, "Quora");
  SplitOptions split_options;
  split_options.num_test_tasks = 50;
  auto split = MakeSplit(*dataset, group, split_options);
  ASSERT_TRUE(split.ok());

  auto evaluate = [&](bool use_feedback) {
    TdpmOptions options;
    options.num_categories = 3;
    options.max_em_iterations = 12;
    options.seed = 7;
    options.use_feedback = use_feedback;
    TdpmSelector selector(options);
    CS_CHECK_OK(selector.Train(split->train_db));
    MetricAccumulator metrics;
    for (const auto& c : split->cases) {
      const BagOfWords& bag = split->train_db.GetTask(c.task).value()->bag;
      auto ranking =
          selector.SelectTopK(bag, c.candidates.size(), c.candidates);
      CS_CHECK(ranking.ok());
      const auto it = std::find_if(
          ranking->begin(), ranking->end(),
          [&](const RankedWorker& r) { return r.worker == c.right_worker; });
      metrics.Add(static_cast<size_t>(it - ranking->begin()), ranking->size());
    }
    return metrics.MeanAccu();
  };

  const double with_feedback = evaluate(true);
  const double without_feedback = evaluate(false);
  EXPECT_GT(with_feedback, without_feedback)
      << "with=" << with_feedback << " without=" << without_feedback;
}

}  // namespace
}  // namespace crowdselect
