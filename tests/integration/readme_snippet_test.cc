// Keeps the README's quickstart snippet honest: this test is the snippet,
// compiled and executed (with a little extra resolved history so the
// model has something to learn from).
#include <gtest/gtest.h>

#include "crowdselect/crowdselect.h"

namespace crowdselect {
namespace {

TEST(ReadmeSnippetTest, QuickstartCompilesAndRuns) {
  CrowdDatabase db;                       // the crowdsourcing database
  WorkerId alice = db.AddWorker("alice");
  WorkerId bob = db.AddWorker("bob");
  TaskId t = db.AddTask("how does a btree index split pages");
  ASSERT_TRUE(db.Assign(alice, t).ok());        // a_ij = 1
  ASSERT_TRUE(db.RecordFeedback(alice, t, 4.0).ok());  // s_ij = 4 thumbs-up
  // ... more resolved history ...
  const char* more[] = {"btree page buffer pool", "index scan btree leaf",
                        "roast chicken crispy skin", "caramelize onion slowly"};
  for (int i = 0; i < 4; ++i) {
    const TaskId task = db.AddTask(more[i]);
    ASSERT_TRUE(db.Assign(alice, task).ok());
    ASSERT_TRUE(db.RecordFeedback(alice, task, i < 2 ? 5.0 : 1.0).ok());
    ASSERT_TRUE(db.Assign(bob, task).ok());
    ASSERT_TRUE(db.RecordFeedback(bob, task, i < 2 ? 1.0 : 5.0).ok());
  }

  // Infer the crowd model (Algorithm 2: variational EM).
  CrowdManager manager(&db, std::make_unique<TdpmSelector>(
      TdpmOptions{.num_categories = 10}));
  ASSERT_TRUE(manager.InferCrowdModel().ok());

  // Select the top-3 online workers for a brand-new task (Algorithm 3:
  // incremental fold-in + Eq. 1 ranking).
  Tokenizer tok{TokenizerOptions{.remove_stopwords = true}};
  BagOfWords task = BagOfWords::FromTextFrozen(
      "What are the advantages of B+ Tree over B Tree?", tok,
      db.vocabulary());
  auto crowd = manager.SelectCrowd(task, /*k=*/3);
  ASSERT_TRUE(crowd.ok());
  EXPECT_EQ(crowd->size(), 2u);  // Only two workers exist.
  for (const RankedWorker& rw : *crowd) {
    EXPECT_LT(rw.worker, 2u);
  }
}

}  // namespace
}  // namespace crowdselect
