// Failure-injection / fuzz suites: corrupted persistence payloads and
// adversarial text must produce clean Status errors (or graceful
// handling), never crashes or silent misreads.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "crowdselect/crowdselect.h"

namespace crowdselect {
namespace {

CrowdDatabase BuildDb() {
  CrowdDatabase db;
  db.AddWorker("alice");
  db.AddWorker("bob");
  db.AddTask("btree page split mechanics");
  db.AddTask("matrix eigenvalue computation");
  CS_CHECK_OK(db.Assign(0, 0));
  CS_CHECK_OK(db.RecordFeedback(0, 0, 4.0));
  CS_CHECK_OK(db.Assign(1, 1));
  CS_CHECK_OK(db.RecordFeedback(1, 1, 2.0));
  CS_CHECK_OK(db.UpdateWorkerSkills(0, {1.0, 2.0}));
  return db;
}

TEST(PersistenceFuzzTest, RandomSingleByteCorruptionNeverCrashes) {
  CrowdDatabase db = BuildDb();
  BinaryWriter writer;
  CrowdDatabasePersistence::Save(db, &writer);
  const std::string golden = writer.buffer();

  Rng rng(0xF022);
  int load_failures = 0, load_successes = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string corrupted = golden;
    const size_t pos = rng.UniformInt(corrupted.size());
    corrupted[pos] = static_cast<char>(rng.UniformInt(256));
    if (corrupted == golden) continue;
    BinaryReader reader(std::move(corrupted));
    auto result = CrowdDatabasePersistence::Load(&reader);
    if (result.ok()) {
      // A flipped byte in free-form payload (e.g. a handle character or a
      // score) can still parse; structural invariants must still hold.
      ++load_successes;
      EXPECT_EQ(result->NumWorkers(), db.NumWorkers());
      EXPECT_EQ(result->NumTasks(), db.NumTasks());
    } else {
      ++load_failures;
    }
  }
  // Most corruptions hit structure and must be rejected.
  EXPECT_GT(load_failures, load_successes);
}

TEST(PersistenceFuzzTest, RandomTruncationNeverCrashes) {
  CrowdDatabase db = BuildDb();
  BinaryWriter writer;
  CrowdDatabasePersistence::Save(db, &writer);
  const std::string golden = writer.buffer();
  Rng rng(0xF033);
  for (int trial = 0; trial < 200; ++trial) {
    const size_t cut = rng.UniformInt(golden.size());
    BinaryReader reader(golden.substr(0, cut));
    auto result = CrowdDatabasePersistence::Load(&reader);
    EXPECT_FALSE(result.ok()) << "cut at " << cut;
  }
}

TEST(ModelSnapshotFuzzTest, RandomCorruptionNeverCrashes) {
  TdpmModelSnapshot snap;
  snap.params = TdpmModelParams::Init(4, 16);
  snap.workers.resize(3);
  for (auto& w : snap.workers) {
    w.lambda = Vector(4, 0.5);
    w.nu_sq = Vector(4, 1.0);
  }
  BinaryWriter writer;
  snap.Serialize(&writer);
  const std::string golden = writer.buffer();
  Rng rng(0xF044);
  for (int trial = 0; trial < 300; ++trial) {
    std::string corrupted = golden;
    // Corrupt a short random window.
    const size_t pos = rng.UniformInt(corrupted.size());
    const size_t len = 1 + rng.UniformInt(4);
    for (size_t i = pos; i < std::min(corrupted.size(), pos + len); ++i) {
      corrupted[i] = static_cast<char>(rng.UniformInt(256));
    }
    BinaryReader reader(std::move(corrupted));
    auto result = TdpmModelSnapshot::Deserialize(&reader);  // Must not crash.
    if (result.ok()) {
      EXPECT_EQ(result->params.num_categories(), 4u);
    }
  }
}

TEST(CsvFuzzTest, GarbageLinesAreRejectedNotCrashing) {
  Rng rng(0xF055);
  const std::string alphabet = "a,\"\n\r\\0123;|x";
  for (int trial = 0; trial < 500; ++trial) {
    std::string line;
    const size_t len = rng.UniformInt(40);
    for (size_t i = 0; i < len; ++i) {
      line += alphabet[rng.UniformInt(alphabet.size())];
    }
    auto result = csv::ParseLine(line);  // ok() or InvalidArgument; no crash.
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsInvalidArgument());
    }
  }
}

TEST(TokenizerFuzzTest, ArbitraryBytesNeverCrash) {
  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  Rng rng(0xF066);
  for (int trial = 0; trial < 300; ++trial) {
    std::string text;
    const size_t len = rng.UniformInt(200);
    for (size_t i = 0; i < len; ++i) {
      text += static_cast<char>(rng.UniformInt(256));
    }
    auto tokens = tokenizer.Tokenize(text);
    for (const auto& t : tokens) EXPECT_FALSE(t.empty());
  }
}

TEST(FoldInFuzzTest, RandomBagsAgainstTrainedModelNeverCrash) {
  CrowdDatabase db = BuildDb();
  TdpmOptions options;
  options.num_categories = 2;
  options.max_em_iterations = 5;
  TdpmSelector selector(options);
  ASSERT_TRUE(selector.Train(db).ok());
  Rng rng(0xF077);
  for (int trial = 0; trial < 200; ++trial) {
    BagOfWords bag;
    const size_t distinct = rng.UniformInt(10);
    for (size_t i = 0; i < distinct; ++i) {
      // Mix of in-vocabulary and wildly out-of-range term ids.
      bag.Add(static_cast<TermId>(rng.UniformInt(1000)),
              1 + static_cast<uint32_t>(rng.UniformInt(5)));
    }
    auto projected = selector.ProjectTask(bag);
    ASSERT_TRUE(projected.ok());
    for (size_t d = 0; d < 2; ++d) {
      EXPECT_TRUE(std::isfinite(projected->lambda[d]));
      EXPECT_GT(projected->nu_sq[d], 0.0);
    }
  }
}

}  // namespace
}  // namespace crowdselect
