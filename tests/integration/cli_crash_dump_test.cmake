# End-to-end crash diagnostics check, run as a ctest:
#   cmake -DCLI=<crowdselect_cli> -DWORK_DIR=<scratch dir> -P cli_crash_dump_test.cmake
#
# Force-crashes a child `simulate` run mid-stream (--crash-after-tasks)
# with the crash handler installed and asserts the black-box postmortem
# contract from docs/observability.md:
#   * the child exits abnormally, yet leaves <dir>/crash_<pid>.jsonl
#   * the dump is JSONL: a flight_dump header (reason SIGABRT, build and
#     config info), open_spans lines, and >= 100 chronological events
#   * the event tail includes WAL appends and serve-path events recorded
#     from at least two distinct threads
# Then checks `debug-dump` produces the same line format on demand, and
# that the sampling profiler emits valid collapsed-stack text over a
# 10k-query workload.

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=... to cli_crash_dump_test.cmake")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/world" "${WORK_DIR}/db" "${WORK_DIR}/crashes")

execute_process(
  COMMAND "${CLI}" generate --platform stack --out "${WORK_DIR}/world" --seed 11
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli generate failed (rc=${rc})")
endif()

execute_process(
  COMMAND "${CLI}" ingest --data "${WORK_DIR}/world" --db-dir "${WORK_DIR}/db"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli ingest failed (rc=${rc})")
endif()

# --- Crash a child simulate mid-run -----------------------------------------
# --scan-parallel-min 1 / --scan-block 64 force every select through the
# scan pool so pool threads record events even on single-core machines.
execute_process(
  COMMAND "${CLI}" simulate --db-dir "${WORK_DIR}/db"
          --k 4 --iters 2 --tasks 8 --top 3
          --serve-threads 2 --scan-parallel-min 1 --scan-block 64
          --crash-dump-dir "${WORK_DIR}/crashes"
          --crash-after-tasks 5
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_QUIET)
if(rc EQUAL 0)
  message(FATAL_ERROR "simulate --crash-after-tasks exited normally (rc=0)")
endif()

file(GLOB dumps "${WORK_DIR}/crashes/crash_*.jsonl")
list(LENGTH dumps num_dumps)
if(NOT num_dumps EQUAL 1)
  message(FATAL_ERROR "expected exactly one crash dump, found: ${dumps}")
endif()
list(GET dumps 0 dump_path)
file(READ "${dump_path}" dump)

# Header: reason, pid, build/config info captured at install time.
if(NOT dump MATCHES "\"type\":\"flight_dump\",\"reason\":\"SIGABRT\"")
  message(FATAL_ERROR "crash dump missing SIGABRT header:\n${dump}")
endif()
foreach(field "\"pid\":[0-9]+" "\"build\":\"[^\"]+\""
        "\"config\":\"[^\"]*crash-after-tasks[^\"]*\""
        "\"threads\":([2-9]|[1-9][0-9])")
  if(NOT dump MATCHES "${field}")
    message(FATAL_ERROR "crash dump header missing ${field}:\n${dump}")
  endif()
endforeach()
if(NOT dump MATCHES "\"type\":\"open_spans\"")
  message(FATAL_ERROR "crash dump missing open_spans lines:\n${dump}")
endif()

# Every line is a flat JSON object (no blank trailing garbage).
string(REPLACE "\n" ";" dump_lines "${dump}")
set(event_count 0)
foreach(line IN LISTS dump_lines)
  if(line STREQUAL "")
    continue()
  endif()
  if(NOT line MATCHES "^\\{\"type\":\"(flight_dump|open_spans|event)\"")
    message(FATAL_ERROR "unexpected dump line: ${line}")
  endif()
  if(NOT line MATCHES "\\}$")
    message(FATAL_ERROR "dump line is not a closed JSON object: ${line}")
  endif()
  if(line MATCHES "^\\{\"type\":\"event\"")
    math(EXPR event_count "${event_count} + 1")
  endif()
endforeach()
if(event_count LESS 100)
  message(FATAL_ERROR "crash dump retained only ${event_count} events (< 100)")
endif()

# The tail carries storage and serve events...
foreach(name storage\\.wal\\.append storage\\.apply serve\\.)
  if(NOT dump MATCHES "\"name\":\"${name}")
    message(FATAL_ERROR "crash dump missing ${name} events:\n${dump}")
  endif()
endforeach()

# ... recorded from at least two distinct threads.
set(seen_threads "")
string(REGEX MATCHALL "\"type\":\"event\",[^\n]*\"thread\":[0-9]+" matches
       "${dump}")
foreach(m IN LISTS matches)
  string(REGEX REPLACE ".*\"thread\":([0-9]+).*" "\\1" t "${m}")
  list(APPEND seen_threads ${t})
endforeach()
list(REMOVE_DUPLICATES seen_threads)
list(LENGTH seen_threads num_threads)
if(num_threads LESS 2)
  message(FATAL_ERROR
          "crash dump events come from ${num_threads} thread(s), need >= 2")
endif()

# --- debug-dump: same format on demand, no crash required -------------------
execute_process(
  COMMAND "${CLI}" debug-dump --workers 2000 --queries 200 --top 5
          --serve-threads 2 --scan-parallel-min 1 --scan-block 128
          --out "${WORK_DIR}/ondemand.jsonl"
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli debug-dump failed (rc=${rc})")
endif()
file(READ "${WORK_DIR}/ondemand.jsonl" ondemand)
if(NOT ondemand MATCHES "\"type\":\"flight_dump\",\"reason\":\"debug_dump\"")
  message(FATAL_ERROR "debug-dump missing header:\n${ondemand}")
endif()
if(NOT ondemand MATCHES "\"type\":\"open_spans\"")
  message(FATAL_ERROR "debug-dump missing open_spans:\n${ondemand}")
endif()
if(NOT ondemand MATCHES "\"type\":\"event\",\"ts_us\":[0-9.]+,\"thread\":[0-9]+,\"event\":\"[a-z_]+\",\"name\":\"[^\"]+\",\"a\":[0-9]+,\"b\":[0-9]+")
  message(FATAL_ERROR "debug-dump event lines differ from crash format:\n${ondemand}")
endif()
if(NOT dump MATCHES "\"type\":\"event\",\"ts_us\":[0-9.]+,\"thread\":[0-9]+,\"event\":\"[a-z_]+\",\"name\":\"[^\"]+\",\"a\":[0-9]+,\"b\":[0-9]+")
  message(FATAL_ERROR "crash dump event lines differ from debug-dump format:\n${dump}")
endif()

# --- sampling profiler over a 10k-query run ---------------------------------
execute_process(
  COMMAND "${CLI}" debug-dump --workers 3000 --queries 10000 --top 5
          --profile-out "${WORK_DIR}/profile.txt"
          --out "${WORK_DIR}/profiled.jsonl"
  RESULT_VARIABLE rc OUTPUT_QUIET ERROR_VARIABLE profile_err)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "debug-dump --profile-out failed (rc=${rc}):\n${profile_err}")
endif()
if(NOT EXISTS "${WORK_DIR}/profile.txt")
  message(FATAL_ERROR "profiler wrote no output file:\n${profile_err}")
endif()
file(READ "${WORK_DIR}/profile.txt" profile)
if(profile STREQUAL "")
  message(FATAL_ERROR "profiler output is empty (no samples over 10k queries)")
endif()
# Frame separators are ';', which is also the CMake list separator —
# substitute them away before splitting on newlines so each stack stays
# one list element.
string(REPLACE ";" "@" profile_no_semis "${profile}")
string(REPLACE "\n" ";" profile_lines "${profile_no_semis}")
foreach(line IN LISTS profile_lines)
  if(line STREQUAL "")
    continue()
  endif()
  # Collapsed-stack grammar: "frame(;frame)* count" — exactly one space.
  if(NOT line MATCHES "^[^ ]+ [0-9]+$")
    message(FATAL_ERROR "malformed collapsed-stack line: ${line}")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "cli_crash_dump_test passed")
