// The paper's headline comparison at miniature scale: TDPM should beat the
// VSM baseline and at least match the multinomial models on a synthetic
// platform. (The full-scale comparison is the bench harness's job; this
// test guards the *ordering* against regressions.)
#include <gtest/gtest.h>

#include "crowdselect/crowdselect.h"

namespace crowdselect {
namespace {

TEST(ComparisonTest, ExperimentRunnerProducesAllAlgorithms) {
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 30;
  config.world.num_tasks = 250;
  config.world.vocab_size = 150;
  config.world.num_categories = 3;
  config.world.mean_answers_per_task = 4.0;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 41);
  ASSERT_TRUE(dataset.ok());
  WorkerGroup group = MakeGroup(dataset->db, 1, "Quora");
  SplitOptions split_options;
  split_options.num_test_tasks = 40;
  auto split = MakeSplit(*dataset, group, split_options);
  ASSERT_TRUE(split.ok());

  auto results = RunExperiment(*split, StandardSelectorFactories(3, 7));
  ASSERT_TRUE(results.ok()) << results.status().ToString();
  ASSERT_EQ(results->size(), 4u);
  EXPECT_EQ((*results)[0].name, "VSM");
  EXPECT_EQ((*results)[1].name, "TSPM");
  EXPECT_EQ((*results)[2].name, "DRM");
  EXPECT_EQ((*results)[3].name, "TDPM");
  for (const auto& r : *results) {
    EXPECT_EQ(r.num_cases, split->cases.size());
    EXPECT_GE(r.mean_accu, 0.0);
    EXPECT_LE(r.mean_accu, 1.0);
    EXPECT_LE(r.top1, r.top2);
    EXPECT_GT(r.train_seconds, 0.0);
    EXPECT_GE(r.select_millis, 0.0);
  }
}

TEST(ComparisonTest, TdpmBeatsVsmOnFeedbackRichWorkload) {
  PlatformConfig config = DefaultPlatformConfig(Platform::kYahooAnswer);
  config.world.num_workers = 35;
  config.world.num_tasks = 350;
  config.world.vocab_size = 180;
  config.world.num_categories = 4;
  config.world.mean_answers_per_task = 4.0;
  auto dataset = GeneratePlatformDataset(Platform::kYahooAnswer, config, 43);
  ASSERT_TRUE(dataset.ok());
  WorkerGroup group = MakeGroup(dataset->db, 1, "Yahoo");
  SplitOptions split_options;
  split_options.num_test_tasks = 60;
  auto split = MakeSplit(*dataset, group, split_options);
  ASSERT_TRUE(split.ok());

  auto results = RunExperiment(*split, StandardSelectorFactories(4, 11));
  ASSERT_TRUE(results.ok());
  const auto& vsm = (*results)[0];
  const auto& tdpm = (*results)[3];
  EXPECT_GT(tdpm.mean_accu, vsm.mean_accu)
      << "TDPM " << tdpm.mean_accu << " vs VSM " << vsm.mean_accu;
}

}  // namespace
}  // namespace crowdselect
