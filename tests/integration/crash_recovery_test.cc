// Crash recovery end-to-end (docs/storage.md): a durable CrowdStoreEngine
// is mutated and its directory is copied *while the engine is still open*
// — the moral equivalent of a power cut, since nothing is flushed at
// close that was not already flushed per record. Reopening the copy must
// recover every acknowledged mutation; a torn WAL tail must be dropped
// and repaired.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "crowddb/storage_engine.h"
#include "util/logging.h"

namespace crowdselect {
namespace {

namespace fs = std::filesystem;

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    const std::string name = ::testing::UnitTest::GetInstance()
                                 ->current_test_info()
                                 ->name();
    live_ = (fs::temp_directory_path() / ("cs_crash_live_" + name)).string();
    crashed_ =
        (fs::temp_directory_path() / ("cs_crash_copy_" + name)).string();
    fs::remove_all(live_);
    fs::remove_all(crashed_);
  }
  void TearDown() override {
    fs::remove_all(live_);
    fs::remove_all(crashed_);
  }

  /// "Power cut": snapshot the storage directory under the running engine.
  void CrashNow() {
    fs::copy(live_, crashed_, fs::copy_options::recursive);
  }

  std::string live_;
  std::string crashed_;
};

TEST_F(CrashRecoveryTest, AcknowledgedMutationsSurviveACrash) {
  auto opened = CrowdStoreEngine::Open(live_);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  auto& engine = *opened;

  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(engine->AddWorker("worker-" + std::to_string(i), true).ok());
    ASSERT_TRUE(
        engine->AddTask("task " + std::to_string(i) + " tree parts").ok());
  }
  ASSERT_TRUE(engine->Checkpoint().ok());
  // Post-checkpoint mutations only exist in the WAL at crash time.
  for (int i = 0; i < 20; ++i) {
    const WorkerId w = static_cast<WorkerId>(i);
    const TaskId t = static_cast<TaskId>((i + 3) % 20);
    ASSERT_TRUE(engine->Assign(w, t).ok());
    ASSERT_TRUE(engine->RecordFeedback(w, t, i * 0.25).ok());
    ASSERT_TRUE(engine->UpdateWorkerSkills(w, {1.0 * i, -0.5 * i}).ok());
  }
  ASSERT_TRUE(engine->SetWorkerOnline(0, false).ok());

  auto expected = engine->FrozenView();
  ASSERT_TRUE(expected.ok());
  CrashNow();

  auto recovered = CrowdStoreEngine::Open(crashed_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->open_stats().checkpoint_loaded);
  EXPECT_GT((*recovered)->open_stats().wal_records_applied, 0u);
  EXPECT_FALSE((*recovered)->open_stats().wal_torn_tail);

  auto view = (*recovered)->FrozenView();
  ASSERT_TRUE(view.ok());
  EXPECT_EQ((*view)->NumWorkers(), (*expected)->NumWorkers());
  EXPECT_EQ((*view)->NumTasks(), (*expected)->NumTasks());
  EXPECT_EQ((*view)->NumAssignments(), (*expected)->NumAssignments());
  EXPECT_EQ((*view)->NumScoredAssignments(),
            (*expected)->NumScoredAssignments());
  EXPECT_FALSE((*view)->GetWorker(0).value()->online);
  EXPECT_EQ((*view)->GetWorker(5).value()->skills,
            (std::vector<double>{5.0, -2.5}));
  EXPECT_DOUBLE_EQ(*(*view)->GetScore(4, 7), 1.0);
  // The replayed vocabulary must match: task text re-tokenizes into the
  // same term ids in WAL order.
  EXPECT_EQ((*view)->vocabulary().size(), (*expected)->vocabulary().size());
}

TEST_F(CrashRecoveryTest, TornWalTailIsDroppedAndRepaired) {
  {
    auto opened = CrowdStoreEngine::Open(live_);
    ASSERT_TRUE(opened.ok());
    auto& engine = *opened;
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          engine->AddWorker("worker-" + std::to_string(i), true).ok());
    }
  }
  // A torn final write: garbage bytes after the last intact record.
  const std::string wal =
      (fs::path(live_) / CrowdStoreEngine::kWalFile).string();
  {
    std::ofstream out(wal, std::ios::binary | std::ios::app);
    out.write("\x13\x37garbage-torn-tail", 19);
  }

  auto recovered = CrowdStoreEngine::Open(live_);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_TRUE((*recovered)->open_stats().wal_torn_tail);
  EXPECT_EQ((*recovered)->open_stats().wal_records_applied, 10u);
  EXPECT_EQ((*recovered)->NumWorkers(), 10u);

  // Open() truncated the tail; appends continue from the intact prefix.
  ASSERT_TRUE((*recovered)->AddWorker("post-crash", true).ok());
  recovered->reset();

  auto clean = CrowdStoreEngine::Open(live_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  EXPECT_FALSE((*clean)->open_stats().wal_torn_tail);
  EXPECT_EQ((*clean)->NumWorkers(), 11u);
  EXPECT_EQ((*clean)->GetWorkerCopy(10).value().handle, "post-crash");
}

TEST_F(CrashRecoveryTest, TruncatedCheckpointIsRejectedNotMisread) {
  {
    auto opened = CrowdStoreEngine::Open(live_);
    ASSERT_TRUE(opened.ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(
          (*opened)->AddWorker("worker-" + std::to_string(i), true).ok());
    }
    ASSERT_TRUE((*opened)->Checkpoint().ok());
  }
  // A checkpoint can never be torn (tmp + rename), but disk corruption can
  // still shorten it. Open must fail with Corruption, not invent data.
  const std::string checkpoint =
      (fs::path(live_) / CrowdStoreEngine::kCheckpointFile).string();
  const auto size = fs::file_size(checkpoint);
  fs::resize_file(checkpoint, size / 2);

  auto recovered = CrowdStoreEngine::Open(live_);
  EXPECT_FALSE(recovered.ok());
}

}  // namespace
}  // namespace crowdselect
