# End-to-end model-quality telemetry check, run as a ctest:
#   cmake -DCLI=<crowdselect_cli> -DWORK_DIR=<scratch dir> \
#         -P cli_quality_drift_test.cmake
#
# Two simulate runs over the same generated world:
#   * drift run — a spammer onset is injected mid-run (--drift-after);
#     the quality monitor must report RMSE degradation, flag the flipped
#     worker, and the alert rules must transition to firing in the
#     Prometheus exposition, the JSON stats, and the flight recorder.
#   * control run — no injection; every alert must stay ok.
# Finally `crowdselect report` renders the drift run's time-series dump.

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=... to cli_quality_drift_test.cmake")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/world")

execute_process(
  COMMAND "${CLI}" generate --platform stack --out "${WORK_DIR}/world" --seed 7
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli generate failed (rc=${rc})")
endif()

# Alert rules: worker drift needs two consecutive breaching ticks, the
# RMSE rule watches the rotating window mean.
file(WRITE "${WORK_DIR}/rules.txt"
  "# quality pages\n"
  "alert worker_drift when quality.tdpm.drift.flagged > 0 for 2\n"
  "alert rmse_degrading when quality.tdpm.rmse.mean > 0.45 for 2\n")

# ---- Drift run: spammer onset after 20 tasks ------------------------------
execute_process(
  COMMAND "${CLI}" simulate --data "${WORK_DIR}/world"
          --k 6 --iters 4 --tasks 120 --top 12 --quality-window 10
          --drift-after 20 --drift-workers 0.1 --drift-z 2
          --alert-rules "${WORK_DIR}/rules.txt"
          --quality-out "${WORK_DIR}/quality.jsonl"
          --timeseries-out "${WORK_DIR}/timeseries.jsonl"
          --stats-out "${WORK_DIR}/stats.json"
          --prom-out "${WORK_DIR}/metrics.prom"
          --flightrec-out "${WORK_DIR}/flight.jsonl"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "drift simulate failed (rc=${rc})")
endif()

# Quality report: shadow evaluation observed every task, RMSE degraded
# after the onset, and the drift detector flagged at least one worker.
file(READ "${WORK_DIR}/quality.jsonl" quality)
if(NOT quality MATCHES "\"tasks_observed\": 120")
  message(FATAL_ERROR "quality monitor missed tasks:\n${quality}")
endif()
if(NOT quality MATCHES "\"rmse_degraded\": true")
  message(FATAL_ERROR "drift run did not degrade RMSE:\n${quality}")
endif()
if(NOT quality MATCHES "\"drift_flagged\": [1-9]")
  message(FATAL_ERROR "drift detector flagged no worker:\n${quality}")
endif()
if(NOT quality MATCHES "\"flagged_workers\": \"[0-9]")
  message(FATAL_ERROR "flagged worker list is empty:\n${quality}")
endif()

# Alerts went firing in the Prometheus exposition (state 2)...
file(READ "${WORK_DIR}/metrics.prom" prom)
foreach(needle "# TYPE crowdselect_alert_state gauge"
        "crowdselect_alert_state{rule=\"worker_drift\"} 2"
        "crowdselect_alert_state{rule=\"rmse_degrading\"} 2")
  if(NOT prom MATCHES "${needle}")
    message(FATAL_ERROR "metrics.prom missing '${needle}':\n${prom}")
  endif()
endforeach()

# ...and in the JSON stats alerts section...
file(READ "${WORK_DIR}/stats.json" stats)
if(NOT stats MATCHES "\"alerts\": {")
  message(FATAL_ERROR "stats.json missing the alerts section:\n${stats}")
endif()
if(NOT stats MATCHES "\"name\": \"worker_drift\"")
  message(FATAL_ERROR "stats.json missing the worker_drift rule:\n${stats}")
endif()
if(NOT stats MATCHES "\"state\": \"firing\"")
  message(FATAL_ERROR "stats.json reports no firing alert:\n${stats}")
endif()
if(NOT stats MATCHES "\"alert\\.firing\": {\"value\": [1-9]")
  message(FATAL_ERROR "alert.firing gauge is zero:\n${stats}")
endif()

# ...and as kAlert flight-recorder events (b=2 encodes kFiring).
file(READ "${WORK_DIR}/flight.jsonl" flight)
if(NOT flight MATCHES "\"event\":\"alert\",\"name\":\"alert\\.worker_drift\"")
  message(FATAL_ERROR "flight recorder has no worker_drift event:\n${flight}")
endif()
if(NOT flight MATCHES "\"name\":\"alert\\.worker_drift\",\"a\":[0-9]+,\"b\":2")
  message(FATAL_ERROR "no firing transition recorded for worker_drift")
endif()

# The time-series dump carries the quality and alert history.
file(READ "${WORK_DIR}/timeseries.jsonl" ts)
foreach(series quality\\.tdpm\\.rmse\\.mean quality\\.tdpm\\.drift\\.flagged
        alert\\.firing dispatch\\.tasks)
  if(NOT ts MATCHES "\"series\": \"${series}\"")
    message(FATAL_ERROR "timeseries.jsonl missing series ${series}")
  endif()
endforeach()

# The report command renders Markdown from the dump + quality report.
execute_process(
  COMMAND "${CLI}" report --timeseries "${WORK_DIR}/timeseries.jsonl"
          --quality "${WORK_DIR}/quality.jsonl" --format md
          --out "${WORK_DIR}/report.md"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli report failed (rc=${rc})")
endif()
file(READ "${WORK_DIR}/report.md" report)
foreach(needle "# Model-quality report" "## Quality summary"
        "## Quality signals" "## Alerts" "quality.tdpm.rmse.mean"
        "alert.firing")
  if(NOT report MATCHES "${needle}")
    message(FATAL_ERROR "report.md missing '${needle}':\n${report}")
  endif()
endforeach()

# JSON format is flat JSONL (one aggregate object per series).
execute_process(
  COMMAND "${CLI}" report --timeseries "${WORK_DIR}/timeseries.jsonl"
          --format json --out "${WORK_DIR}/report.jsonl"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli report --format json failed (rc=${rc})")
endif()
file(READ "${WORK_DIR}/report.jsonl" report_json)
if(NOT report_json MATCHES "\"series\": \"quality.tdpm.rmse.mean\"")
  message(FATAL_ERROR "report.jsonl missing rmse series:\n${report_json}")
endif()

# ---- Control run: same world, no injection --------------------------------
execute_process(
  COMMAND "${CLI}" simulate --data "${WORK_DIR}/world"
          --k 6 --iters 4 --tasks 120 --top 12 --quality-window 10
          --drift-z 2
          --alert-rules "${WORK_DIR}/rules.txt"
          --quality-out "${WORK_DIR}/quality_control.jsonl"
          --stats-out "${WORK_DIR}/stats_control.json"
          --prom-out "${WORK_DIR}/metrics_control.prom"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "control simulate failed (rc=${rc})")
endif()

file(READ "${WORK_DIR}/quality_control.jsonl" control)
if(NOT control MATCHES "\"rmse_degraded\": false")
  message(FATAL_ERROR "control run degraded RMSE:\n${control}")
endif()
if(NOT control MATCHES "\"drift_flagged\": 0")
  message(FATAL_ERROR "control run flagged a worker:\n${control}")
endif()

file(READ "${WORK_DIR}/metrics_control.prom" control_prom)
foreach(needle "crowdselect_alert_state{rule=\"worker_drift\"} 0"
        "crowdselect_alert_state{rule=\"rmse_degrading\"} 0")
  if(NOT control_prom MATCHES "${needle}")
    message(FATAL_ERROR "control alert not ok: missing '${needle}'")
  endif()
endforeach()

file(READ "${WORK_DIR}/stats_control.json" control_stats)
if(control_stats MATCHES "\"state\": \"firing\"")
  message(FATAL_ERROR "control run has a firing alert:\n${control_stats}")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "cli_quality_drift_test passed")
