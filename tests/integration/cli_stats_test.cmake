# End-to-end observability check, run as a ctest:
#   cmake -DCLI=<crowdselect_cli> -DWORK_DIR=<scratch dir> -P cli_stats_test.cmake
#
# Generates a synthetic world, pushes tasks through the full blue path
# (train -> select -> dispatch -> feedback) with --stats-out/--trace-out,
# and asserts the snapshot carries the payload DESIGN.md documents:
# nonzero E-step/CG/M-step span timings, the per-iteration ELBO history,
# and the dispatcher counters.

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=... to cli_stats_test.cmake")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/world")

execute_process(
  COMMAND "${CLI}" generate --platform stack --out "${WORK_DIR}/world" --seed 7
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli generate failed (rc=${rc})")
endif()

execute_process(
  COMMAND "${CLI}" simulate --data "${WORK_DIR}/world"
          --k 6 --iters 4 --tasks 3 --top 3
          --stats-out "${WORK_DIR}/stats.json"
          --trace-out "${WORK_DIR}/trace.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli simulate failed (rc=${rc})")
endif()

file(READ "${WORK_DIR}/stats.json" stats)

# Dispatcher counters: 3 tasks through the blue path, >= 1 answer each.
foreach(counter dispatch\\.tasks dispatch\\.answers em\\.cg\\.iterations
        em\\.cg\\.solves select\\.queries)
  if(NOT stats MATCHES "\"${counter}\": [1-9]")
    message(FATAL_ERROR "stats.json missing nonzero counter ${counter}:\n${stats}")
  endif()
endforeach()

# Per-iteration ELBO gauge with a non-empty history array.
if(NOT stats MATCHES "\"em\\.elbo\": {\"value\": [^,]+, \"history\": \\[-?[0-9]")
  message(FATAL_ERROR "stats.json missing em.elbo history:\n${stats}")
endif()

# Every EM phase span ran and accumulated nonzero wall time. Span summary
# entries are single-line: {"name": ..., "count": ..., "total_us": ...}.
foreach(phase em\\.fit em\\.iteration em\\.e_step\\.workers em\\.e_step\\.tasks
        em\\.m_step foldin\\.project select\\.topk dispatch\\.task)
  if(NOT stats MATCHES "\"name\": \"${phase}\", \"count\": [1-9]")
    message(FATAL_ERROR "stats.json missing span summary for ${phase}:\n${stats}")
  endif()
  if(stats MATCHES "\"name\": \"${phase}\", \"count\": [0-9]+, \"total_us\": 0[,}]")
    message(FATAL_ERROR "span ${phase} reports zero total_us:\n${stats}")
  endif()
endforeach()

# The derived span metrics made it into the histogram section too.
if(NOT stats MATCHES "\"span\\.em\\.m_step\\.us\": {\"count\": [1-9]")
  message(FATAL_ERROR "stats.json missing span.em.m_step.us histogram:\n${stats}")
endif()

file(READ "${WORK_DIR}/trace.json" trace)
if(NOT trace MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "trace.json is not Chrome trace_event JSON:\n${trace}")
endif()
if(NOT trace MATCHES "\"name\":\"em\\.fit\"")
  message(FATAL_ERROR "trace.json missing the em.fit span:\n${trace}")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "cli_stats_test passed")
