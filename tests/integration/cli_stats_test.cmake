# End-to-end observability check, run as a ctest:
#   cmake -DCLI=<crowdselect_cli> -DWORK_DIR=<scratch dir> -P cli_stats_test.cmake
#
# Generates a synthetic world, pushes tasks through the full blue path
# (train -> select -> dispatch -> feedback) with --stats-out/--trace-out,
# and asserts the snapshot carries the payload DESIGN.md documents:
# nonzero E-step/CG/M-step span timings, the per-iteration ELBO history,
# and the dispatcher counters.

foreach(var CLI WORK_DIR)
  if(NOT DEFINED ${var})
    message(FATAL_ERROR "pass -D${var}=... to cli_stats_test.cmake")
  endif()
endforeach()

file(REMOVE_RECURSE "${WORK_DIR}")
file(MAKE_DIRECTORY "${WORK_DIR}/world")

execute_process(
  COMMAND "${CLI}" generate --platform stack --out "${WORK_DIR}/world" --seed 7
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli generate failed (rc=${rc})")
endif()

execute_process(
  COMMAND "${CLI}" simulate --data "${WORK_DIR}/world"
          --k 6 --iters 4 --tasks 3 --top 3 --slo-window 2
          --stats-out "${WORK_DIR}/stats.json"
          --trace-out "${WORK_DIR}/trace.json"
          --prom-out "${WORK_DIR}/metrics.prom"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli simulate failed (rc=${rc})")
endif()

file(READ "${WORK_DIR}/stats.json" stats)

# Dispatcher counters: 3 tasks through the blue path, >= 1 answer each.
foreach(counter dispatch\\.tasks dispatch\\.answers em\\.cg\\.iterations
        em\\.cg\\.solves select\\.queries)
  if(NOT stats MATCHES "\"${counter}\": [1-9]")
    message(FATAL_ERROR "stats.json missing nonzero counter ${counter}:\n${stats}")
  endif()
endforeach()

# Per-iteration ELBO gauge with a non-empty history array.
if(NOT stats MATCHES "\"em\\.elbo\": {\"value\": [^,]+, \"history\": \\[-?[0-9]")
  message(FATAL_ERROR "stats.json missing em.elbo history:\n${stats}")
endif()

# Every EM phase span ran and accumulated nonzero wall time. Span summary
# entries are single-line: {"name": ..., "count": ..., "total_us": ...}.
foreach(phase em\\.fit em\\.iteration em\\.e_step\\.workers em\\.e_step\\.tasks
        em\\.m_step foldin\\.project select\\.topk dispatch\\.task)
  if(NOT stats MATCHES "\"name\": \"${phase}\", \"count\": [1-9]")
    message(FATAL_ERROR "stats.json missing span summary for ${phase}:\n${stats}")
  endif()
  if(stats MATCHES "\"name\": \"${phase}\", \"count\": [0-9]+, \"total_us\": 0[,}]")
    message(FATAL_ERROR "span ${phase} reports zero total_us:\n${stats}")
  endif()
endforeach()

# The derived span metrics made it into the histogram section too.
if(NOT stats MATCHES "\"span\\.em\\.m_step\\.us\": {\"count\": [1-9]")
  message(FATAL_ERROR "stats.json missing span.em.m_step.us histogram:\n${stats}")
endif()

file(READ "${WORK_DIR}/trace.json" trace)
if(NOT trace MATCHES "\"traceEvents\"")
  message(FATAL_ERROR "trace.json is not Chrome trace_event JSON:\n${trace}")
endif()
if(NOT trace MATCHES "\"name\":\"em\\.fit\"")
  message(FATAL_ERROR "trace.json missing the em.fit span:\n${trace}")
endif()

# SLO windows: --slo-window rotated the sliding latency windows, so the
# gauges carry the serve.select and crowd.process_task quantiles.
foreach(gauge slo\\.serve\\.select\\.p95 slo\\.serve\\.select\\.window_count
        slo\\.crowd\\.process_task\\.p95)
  if(NOT stats MATCHES "\"${gauge}\": {\"value\": [1-9]")
    message(FATAL_ERROR "stats.json missing nonzero SLO gauge ${gauge}:\n${stats}")
  endif()
endforeach()

# Prometheus exposition: sanitized crowdselect_ names with type headers,
# cumulative histogram buckets, and the SLO gauges.
file(READ "${WORK_DIR}/metrics.prom" prom)
foreach(line "# TYPE crowdselect_serve_queries counter"
        "# TYPE crowdselect_slo_serve_select_p95 gauge"
        "# TYPE crowdselect_span_serve_select_us histogram"
        "crowdselect_span_serve_select_us_bucket{le=\"\\+Inf\"}")
  if(NOT prom MATCHES "${line}")
    message(FATAL_ERROR "metrics.prom missing '${line}':\n${prom}")
  endif()
endforeach()

# EXPLAIN: train a model, then the explain command must render the plan —
# stage latencies, cache outcome, CG iterations, score decomposition —
# and its ranking must be byte-identical to a plain select.
execute_process(
  COMMAND "${CLI}" train --data "${WORK_DIR}/world"
          --model "${WORK_DIR}/model.bin" --k 6 --iters 4
  RESULT_VARIABLE rc OUTPUT_QUIET)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli train failed (rc=${rc})")
endif()

execute_process(
  COMMAND "${CLI}" explain --data "${WORK_DIR}/world"
          --model "${WORK_DIR}/model.bin" --task "tag1 tag2 tag3" --top 4
          --explain-out "${WORK_DIR}/explain.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE explain_out)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli explain failed (rc=${rc})")
endif()
foreach(needle "EXPLAIN crowd-selection query" "snapshot" "cache MISS"
        "CG [0-9]+ iterations" "fold-in" "scan" "total" "ranking" "#1"
        "margin" "cutoff")
  if(NOT explain_out MATCHES "${needle}")
    message(FATAL_ERROR "explain output missing '${needle}':\n${explain_out}")
  endif()
endforeach()

file(READ "${WORK_DIR}/explain.json" explain_json)
foreach(field "\"snapshot\"" "\"cache_hit\"" "\"cg_iterations\""
        "\"latency_us\"" "\"ranking\"" "\"terms\"")
  if(NOT explain_json MATCHES "${field}")
    message(FATAL_ERROR "explain.json missing ${field}:\n${explain_json}")
  endif()
endforeach()

# Parity: select with --explain-out prints the same ranking lines as the
# plain select (the EXPLAIN scan must not change what is returned).
execute_process(
  COMMAND "${CLI}" select --data "${WORK_DIR}/world"
          --model "${WORK_DIR}/model.bin" --task "tag1 tag2 tag3" --top 4
  RESULT_VARIABLE rc OUTPUT_VARIABLE select_plain)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli select failed (rc=${rc})")
endif()
execute_process(
  COMMAND "${CLI}" select --data "${WORK_DIR}/world"
          --model "${WORK_DIR}/model.bin" --task "tag1 tag2 tag3" --top 4
          --explain-out "${WORK_DIR}/explain_select.json"
  RESULT_VARIABLE rc OUTPUT_VARIABLE select_explained)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "crowdselect_cli select --explain-out failed (rc=${rc})")
endif()
if(NOT select_plain STREQUAL select_explained)
  message(FATAL_ERROR "select ranking changed when stats were attached:\n"
          "plain:\n${select_plain}\nexplained:\n${select_explained}")
endif()

file(REMOVE_RECURSE "${WORK_DIR}")
message(STATUS "cli_stats_test passed")
