// crowdselect command-line tool: generate / inspect / train / select /
// evaluate, end to end, over CSV datasets (see crowddb/import_export.h).
//
//   crowdselect_cli generate --platform quora|yahoo|stack|hetero --out DIR
//                            [--seed N] [--types N] [--spammers F] ...
//   crowdselect_cli stats    --data DIR [--thresholds 1,2,3]
//   crowdselect_cli train    --data DIR --model FILE [--k N] [--iters N]
//   crowdselect_cli select   --data DIR --model FILE|ID --task "TEXT" [--top N]
//   crowdselect_cli explain  --data DIR --model FILE|ID --task "TEXT" [--top N]
//   crowdselect_cli evaluate --data DIR [--k N] [--tests N] [--threshold N]
//                            [--models tdpm,router,ensemble]
//   crowdselect_cli simulate --data DIR [--k N] [--iters N] [--tasks N]
//                            [--top N] [--seed N] [--slo-window N]
//   crowdselect_cli ingest   --data DIR --db-dir DIR [--shards N]
//   crowdselect_cli dbinfo   --db-dir DIR
//   crowdselect_cli debug-dump [--workers N] [--queries N] [--out FILE]
//
// `ingest` bulk-loads a CSV dataset into a durable storage-engine
// directory (docs/storage.md: CHECKPOINT + wal.log + MANIFEST); `dbinfo`
// prints what Open() recovered, including per-shard record counts.
// `simulate --db-dir DIR` runs the blue path against that engine, so every
// simulated task / answer / feedback is WAL-logged and crash-recoverable.
//
// Every command also accepts --stats-out FILE (observability snapshot as
// JSON, see obs/stats_reporter.h), --trace-out FILE (Chrome trace_event
// JSON loadable in chrome://tracing or Perfetto), and --prom-out FILE
// (Prometheus text exposition, see docs/observability.md). The serving
// commands (select, explain, simulate) accept --serve-threads N and
// --foldin-cache N, and simulate accepts --live-updates 1 (see
// serve/selection_engine.h). `explain` (or `select --explain-out FILE`)
// attaches a serve::QueryStats to the query and renders the EXPLAIN plan:
// snapshot version, fold-in cache hit/miss, CG iterations, per-stage
// latencies, and the per-candidate score decomposition.
//
// Crowd models (docs/models.md): select/explain/simulate accept --model
// as either a trained TDPM snapshot FILE (the classic path) or a
// registry ID ("tdpm", "dawid_skene", "router", "ensemble"), in which
// case the model is trained in-process from --data before serving and
// the EXPLAIN payload carries the serving model id plus the router's
// dispatch decision. `generate --platform hetero` produces the
// heterogeneous workload (Zipf task-type mix, specialist / spammer /
// adversarial worker profiles) the router is built for, and
// `evaluate --models a,b,c` compares registry models head to head.
//
// Black-box diagnostics (docs/observability.md): every command accepts
// --crash-dump-dir DIR (install the async-signal-safe crash handler),
// --flightrec-out FILE (dump the flight recorder on exit), --profile-out
// FILE (SIGPROF sampling profiler, collapsed-stack output), --watchdog-ms
// N (stall watchdog tick), and --slo-rotate-ms N (background SLO window
// rotation). `debug-dump` runs a synthetic serve workload and writes the
// flight-recorder dump on demand — the same JSONL format a crash dump
// uses.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <unordered_map>
#include <optional>
#include <string>
#include <vector>

#include "crowdselect/crowdselect.h"
#include "crowddb/jsonl.h"
#include "obs/alerts.h"
#include "obs/crash_handler.h"
#include "obs/flight_recorder.h"
#include "obs/profiler.h"
#include "obs/timeseries.h"
#include "obs/watchdog.h"
#include "serve/quality_monitor.h"
#include "util/rng.h"
#include "util/string_util.h"

using namespace crowdselect;

namespace {

struct Args {
  std::string command;
  std::map<std::string, std::string> flags;

  const char* Get(const std::string& key, const char* fallback = nullptr) const {
    auto it = flags.find(key);
    if (it != flags.end()) return it->second.c_str();
    return fallback;
  }
  long GetInt(const std::string& key, long fallback) const {
    const char* v = Get(key);
    return v == nullptr ? fallback : std::atol(v);
  }
};

Args Parse(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string key = argv[i];
    if (key.rfind("--", 0) == 0) key = key.substr(2);
    args.flags[key] = argv[i + 1];
  }
  return args;
}

int Usage() {
  std::fprintf(stderr,
               "usage: crowdselect_cli "
               "<generate|stats|train|select|explain|evaluate|simulate"
               "|ingest|dbinfo> [--flag value]...\n"
               "  generate --platform quora|yahoo|stack|hetero --out DIR "
               "[--seed N]\n"
               "           hetero also takes --types N --workers N --tasks N "
               "--answers N\n"
               "           --specialists F --spammers F --adversarial F "
               "--type-zipf F\n"
               "  stats    --data DIR [--thresholds 1,3,5]\n"
               "  train    --data DIR --model FILE [--k N] [--iters N]\n"
               "  select   --data DIR --model FILE|ID --task TEXT [--top N]\n"
               "  explain  --data DIR --model FILE|ID --task TEXT [--top N]\n"
               "           (IDs: tdpm, dawid_skene, router, ensemble — "
               "trained in-process;\n"
               "            --clusters N router members / DS types, "
               "--labels N DS labels)\n"
               "  evaluate --data DIR [--k N] [--tests N] [--threshold N]\n"
               "           [--models tdpm,router,... compare registry models "
               "instead of\n"
               "            the VSM/TSPM/DRM/TDPM baseline table]\n"
               "  simulate --data DIR | --db-dir DIR [--k N] [--iters N] "
               "[--tasks N] [--top N] [--seed N]\n"
               "  ingest   --data DIR --db-dir DIR [--shards N]\n"
               "  dbinfo   --db-dir DIR\n"
               "  debug-dump [--workers N] [--k N] [--queries N] [--top N] "
               "[--out FILE]\n"
               "  report   --timeseries FILE [--quality FILE] "
               "[--format md|json] [--out FILE]\n"
               "common flags:\n"
               "  --stats-out FILE   write a metrics/span snapshot as JSON\n"
               "  --trace-out FILE   write spans as Chrome trace_event JSON\n"
               "  --prom-out FILE    write metrics as Prometheus text "
               "exposition\n"
               "  --timeseries-out FILE  write sampled metric history as "
               "JSONL\n"
               "  --alert-rules FILE     load declarative alert rules "
               "(docs/observability.md)\n"
               "serving flags (select, explain, simulate):\n"
               "  --serve-threads N  scan threads for selection (0 = all cores)\n"
               "  --foldin-cache N   fold-in cache entries (0 disables)\n"
               "  --quant MODE       dense-scan snapshot variant: fp64\n"
               "                     (default) or int8 (quantized phase 1 +\n"
               "                     full-precision rescore)\n"
               "  --oversample N     int8: rescore the top k*N phase-1 "
               "candidates (default 4)\n"
               "  --force-scalar 1   pin the scalar score kernel (also:\n"
               "                     CROWDSELECT_FORCE_SCALAR=1 env)\n"
               "  --explain-out FILE select/explain: write the query's "
               "EXPLAIN payload as JSON\n"
               "  --live-updates 1   simulate only: incremental skill refresh\n"
               "                     after each resolved task\n"
               "  --slo-window N     simulate only: rotate SLO latency "
               "windows every N tasks\n"
               "quality monitoring (simulate, evaluate):\n"
               "  --quality-out FILE  simulate: online shadow-evaluation "
               "report (flat JSON);\n"
               "                      evaluate: per-model quality JSONL\n"
               "  --quality-window N  simulate: tasks per quality rotation "
               "window (default 50)\n"
               "  --drift-after N     simulate: after N tasks, flip a "
               "fraction of workers\n"
               "  --drift-workers F   ...to near-zero feedback (spammer "
               "onset, default 0.3)\n"
               "  --drift-z Z         |z| above which a worker is flagged "
               "as drifting (default 3)\n"
               "storage flags (ingest, dbinfo, simulate --db-dir):\n"
               "  --shards N          in-memory shards (default 8)\n"
               "  --fsync 1           fsync the WAL after every append\n"
               "  --auto-checkpoint N checkpoint every N mutations\n"
               "diagnostics flags (every command):\n"
               "  --crash-dump-dir DIR   install the crash handler; fatal\n"
               "                         signals write DIR/crash_<pid>.jsonl\n"
               "  --flightrec-out FILE   dump the flight recorder on exit\n"
               "  --profile-out FILE     sampling CPU profiler, collapsed\n"
               "                         stacks (--profile-interval-us N)\n"
               "  --watchdog-ms N        stall watchdog, tick every N ms\n"
               "  --select-deadline-ms N watchdog deadline per select "
               "(default 1000)\n"
               "  --scan-parallel-min N  parallel-scan candidate threshold\n"
               "  --slo-rotate-ms N      background SLO window rotation\n"
               "  --crash-after-tasks N  simulate only: abort() after N "
               "tasks (crash-path testing)\n");
  return 2;
}

serve::ServeOptions ServeOptionsFromArgs(const Args& args) {
  serve::ServeOptions serve_options;
  serve_options.num_threads =
      static_cast<size_t>(args.GetInt("serve-threads", 0));
  serve_options.foldin_cache_capacity =
      static_cast<size_t>(args.GetInt("foldin-cache", 256));
  serve_options.min_parallel_candidates = static_cast<size_t>(
      args.GetInt("scan-parallel-min",
                  static_cast<long>(serve_options.min_parallel_candidates)));
  serve_options.scan_block = static_cast<size_t>(
      args.GetInt("scan-block", static_cast<long>(serve_options.scan_block)));
  serve_options.select_deadline_ms = static_cast<double>(
      args.GetInt("select-deadline-ms",
                  static_cast<long>(serve_options.select_deadline_ms)));
  if (const char* quant = args.Get("quant")) {
    serve_options.quant = std::string(quant) == "int8"
                              ? serve::ScanQuant::kInt8
                              : serve::ScanQuant::kFp64;
  }
  serve_options.oversample = static_cast<size_t>(
      args.GetInt("oversample", static_cast<long>(serve_options.oversample)));
  serve_options.force_scalar_kernel = args.GetInt("force-scalar", 0) != 0;
  return serve_options;
}

Result<Platform> ParsePlatform(const std::string& name) {
  if (name == "quora") return Platform::kQuora;
  if (name == "yahoo") return Platform::kYahooAnswer;
  if (name == "stack") return Platform::kStackOverflow;
  return Status::InvalidArgument("unknown platform: " + name);
}

int Fail(const Status& status) {
  std::fprintf(stderr, "error: %s\n", status.ToString().c_str());
  return 1;
}

// ---------------------------------------------------------------------------
// Black-box diagnostics (docs/observability.md): crash handler, flight
// recorder dumps, stall watchdog, sampling profiler, SLO rotation.
// ---------------------------------------------------------------------------

/// One-line reconstruction of the invocation, embedded in crash dumps so
/// a postmortem shows what the process was asked to do.
std::string ConfigSummary(const Args& args) {
  std::string out = args.command;
  for (const auto& [key, value] : args.flags) {
    out += " --" + key + " " + value;
  }
  return out;
}

std::string BuildInfoString() {
  std::string info = "crowdselect_cli";
#ifdef NDEBUG
  info += " (release)";
#else
  info += " (debug)";
#endif
  return info;
}

/// Honors the diagnostics flags before the command runs. Misconfiguration
/// (bad profiler interval, unwritable crash-dump dir) fails loudly here
/// rather than being discovered during a postmortem.
Status SetupDiagnostics(const Args& args) {
  if (const char* dir = args.Get("crash-dump-dir")) {
    obs::CrashHandlerOptions options;
    options.dump_dir = dir;
    options.build_info = BuildInfoString();
    options.config = ConfigSummary(args);
    CS_RETURN_NOT_OK(obs::InstallCrashHandler(options));
  }
  if (const long tick_ms = args.GetInt("watchdog-ms", 0); tick_ms > 0) {
    obs::Watchdog::Global().Start(static_cast<double>(tick_ms));
  }
  if (const long rotate_ms = args.GetInt("slo-rotate-ms", 0); rotate_ms > 0) {
    obs::SloTracker::Global().StartBackgroundRotation(
        static_cast<double>(rotate_ms) / 1e3);
  }
  if (args.Get("profile-out") != nullptr) {
    CS_RETURN_NOT_OK(obs::SamplingProfiler::Global().Start(
        static_cast<double>(args.GetInt("profile-interval-us", 1000))));
  }
  if (const char* rules = args.Get("alert-rules")) {
    // A bad rule file fails the command up front — a silently ignored
    // alert is worse than no alert.
    CS_RETURN_NOT_OK(obs::AlertEngine::Global().LoadRulesFile(rules));
    std::fprintf(stderr, "loaded %zu alert rule(s) from %s\n",
                 obs::AlertEngine::Global().NumRules(), rules);
  }
  return Status::OK();
}

/// Flushes diagnostics after the command ran. Like the observability
/// outputs, failures here are reported but never change the exit code.
void FinishDiagnostics(const Args& args) {
  if (const char* path = args.Get("profile-out")) {
    obs::SamplingProfiler& profiler = obs::SamplingProfiler::Global();
    (void)profiler.Stop();  // Not running is fine: Start() may have failed.
    const Status st = profiler.WriteCollapsedFile(path);
    if (st.ok()) {
      std::fprintf(stderr, "profile written to %s (%llu samples, %llu "
                   "dropped)\n", path,
                   static_cast<unsigned long long>(profiler.samples()),
                   static_cast<unsigned long long>(profiler.dropped()));
    } else {
      std::fprintf(stderr, "error writing --profile-out: %s\n",
                   st.ToString().c_str());
    }
  }
  if (const char* path = args.Get("flightrec-out")) {
    const Status st =
        obs::FlightRecorder::Global().WriteJsonlFile(path, "cli_exit");
    if (st.ok()) {
      std::fprintf(stderr, "flight-recorder dump written to %s\n", path);
    } else {
      std::fprintf(stderr, "error writing --flightrec-out: %s\n",
                   st.ToString().c_str());
    }
  }
  if (obs::Watchdog::Global().running()) obs::Watchdog::Global().Stop();
  obs::SloTracker::Global().StopBackgroundRotation();
}

/// Builds a ModelConfig for registry-created models from the serving and
/// model flags (shared by select, explain, simulate, evaluate).
ModelConfig ModelConfigFromArgs(const Args& args) {
  ModelConfig config;
  config.tdpm.num_categories = static_cast<size_t>(args.GetInt("k", 10));
  config.tdpm.max_em_iterations = static_cast<int>(args.GetInt("iters", 30));
  config.tdpm.seed = static_cast<uint64_t>(args.GetInt("seed", 42));
  config.tdpm.num_threads = 0;
  config.serve = ServeOptionsFromArgs(args);
  const size_t clusters = static_cast<size_t>(args.GetInt("clusters", 3));
  config.router_num_clusters = clusters;
  config.ds_num_types = clusters;
  config.ds_num_labels = static_cast<size_t>(args.GetInt("labels", 4));
  return config;
}

int CmdGenerate(const Args& args) {
  const char* platform_name = args.Get("platform");
  const char* out = args.Get("out");
  if (!platform_name || !out) return Usage();
  if (std::string(platform_name) == "hetero") {
    HeterogeneousConfig config;
    config.seed = static_cast<uint64_t>(args.GetInt("seed", 0xEDB7));
    config.num_types = static_cast<size_t>(
        args.GetInt("types", static_cast<long>(config.num_types)));
    config.num_workers = static_cast<size_t>(
        args.GetInt("workers", static_cast<long>(config.num_workers)));
    config.num_tasks = static_cast<size_t>(
        args.GetInt("tasks", static_cast<long>(config.num_tasks)));
    config.answers_per_task = static_cast<size_t>(
        args.GetInt("answers", static_cast<long>(config.answers_per_task)));
    if (const char* f = args.Get("specialists")) {
      config.specialist_fraction = std::atof(f);
    }
    if (const char* f = args.Get("spammers")) {
      config.spammer_fraction = std::atof(f);
    }
    if (const char* f = args.Get("adversarial")) {
      config.adversarial_fraction = std::atof(f);
    }
    if (const char* f = args.Get("type-zipf")) {
      config.type_zipf_exponent = std::atof(f);
    }
    auto data = GenerateHeterogeneousDataset(config);
    if (!data.ok()) return Fail(data.status());
    Status st = ExportDatabaseCsvFiles(data->dataset.db, out);
    if (!st.ok()) return Fail(st);
    std::map<WorkerProfile, size_t> mix;
    for (WorkerProfile p : data->worker_profile) ++mix[p];
    std::printf(
        "wrote %s/{workers,tasks,assignments}.csv: heterogeneous workload, "
        "%zu types, %zu workers (%zu specialist / %zu generalist / "
        "%zu spammer / %zu adversarial), %zu tasks\n",
        out, config.num_types, data->dataset.db.NumWorkers(),
        mix[WorkerProfile::kSpecialist], mix[WorkerProfile::kGeneralist],
        mix[WorkerProfile::kSpammer], mix[WorkerProfile::kAdversarial],
        data->dataset.db.NumTasks());
    return 0;
  }
  auto platform = ParsePlatform(platform_name);
  if (!platform.ok()) return Fail(platform.status());
  auto dataset =
      GeneratePlatformDataset(*platform, args.GetInt("seed", 0xEDB7));
  if (!dataset.ok()) return Fail(dataset.status());
  Status st = ExportDatabaseCsvFiles(dataset->db, out);
  if (!st.ok()) return Fail(st);
  std::printf("wrote %s/{workers,tasks,assignments}.csv: %zu workers, "
              "%zu tasks, %zu scored answers\n",
              out, dataset->db.NumWorkers(), dataset->db.NumTasks(),
              dataset->db.NumScoredAssignments());
  return 0;
}

int CmdStats(const Args& args) {
  const char* data = args.Get("data");
  if (!data) return Usage();
  auto db = ImportDatabaseCsvFiles(data);
  if (!db.ok()) return Fail(db.status());
  std::vector<size_t> thresholds = {1, 2, 3, 5, 8, 12};
  if (const char* t = args.Get("thresholds")) {
    thresholds.clear();
    for (const auto& piece : SplitAny(t, ",")) {
      thresholds.push_back(static_cast<size_t>(std::atol(piece.c_str())));
    }
  }
  TableReporter table("Crowd statistics");
  table.SetHeader({"Threshold", "GroupSize", "TaskCoverage"});
  for (const GroupStats& s : GroupSweep(*db, thresholds)) {
    table.AddRow({std::to_string(s.threshold), std::to_string(s.size),
                  TableReporter::Cell(s.coverage)});
  }
  table.Print(std::cout);
  return 0;
}

int CmdTrain(const Args& args) {
  const char* data = args.Get("data");
  const char* model_path = args.Get("model");
  if (!data || !model_path) return Usage();
  auto db = ImportDatabaseCsvFiles(data);
  if (!db.ok()) return Fail(db.status());

  TdpmOptions options;
  options.num_categories = static_cast<size_t>(args.GetInt("k", 10));
  options.max_em_iterations = static_cast<int>(args.GetInt("iters", 30));
  options.num_threads = 0;
  TdpmSelector selector(options);
  Timer timer;
  Status st = selector.Train(*db);
  if (!st.ok()) return Fail(st);

  TdpmModelSnapshot snapshot;
  snapshot.params = selector.fit().params;
  snapshot.workers = selector.fit().state.workers;
  st = snapshot.SaveToFile(model_path);
  if (!st.ok()) return Fail(st);
  std::printf("trained TDPM (K=%zu) on %zu tasks in %.2fs; ELBO %.1f -> "
              "%.1f over %d iterations; model saved to %s\n",
              options.num_categories, db->NumTasks(), timer.ElapsedSeconds(),
              selector.fit().elbo_history.front(),
              selector.fit().elbo_history.back(), selector.fit().iterations,
              model_path);
  return 0;
}

/// Shared setup of the serving commands (select, explain): data + model
/// loaded, task tokenized against the training vocabulary, and a
/// candidate pool assembled from the online workers. Two serving paths:
/// `model` is set when --model named a registry id (trained in-process),
/// `engine` when it named a TDPM snapshot file (classic path).
struct ServeContext {
  CrowdDatabase db;
  std::unique_ptr<serve::SelectionEngine> engine;
  std::unique_ptr<CrowdModel> model;
  BagOfWords bag;
  std::vector<WorkerId> candidates;
  std::string task_text;
};

Result<ServeContext> MakeServeContext(const Args& args) {
  const char* data = args.Get("data");
  const char* model_path = args.Get("model");
  const char* task_text = args.Get("task");
  if (!data || !model_path || !task_text) {
    return Status::InvalidArgument(
        "select/explain need --data, --model, and --task");
  }
  CS_ASSIGN_OR_RETURN(CrowdDatabase db, ImportDatabaseCsvFiles(data));

  Tokenizer tokenizer{TokenizerOptions{.remove_stopwords = true}};
  ServeContext ctx;
  ctx.task_text = task_text;
  ctx.bag = BagOfWords::FromTextFrozen(task_text, tokenizer, db.vocabulary());
  if (ctx.bag.empty()) {
    std::fprintf(stderr,
                 "warning: no task term matched the training vocabulary; "
                 "selection falls back to the prior\n");
  }

  if (CrowdModelRegistry::Global().Has(model_path)) {
    // Registry id: build and train the model in-process from --data.
    CS_ASSIGN_OR_RETURN(ctx.model,
                        CrowdModelRegistry::Global().Create(
                            model_path, ModelConfigFromArgs(args)));
    CS_RETURN_NOT_OK(ctx.model->Train(db));
    ctx.candidates = db.OnlineWorkers();
    ctx.db = std::move(db);
    return ctx;
  }

  CS_ASSIGN_OR_RETURN(TdpmModelSnapshot snapshot,
                      TdpmModelSnapshot::LoadFromFile(model_path));

  TdpmOptions options;
  options.num_categories = snapshot.params.num_categories();
  CS_ASSIGN_OR_RETURN(TaskFolder folder,
                      TaskFolder::Create(snapshot.params, options));

  // Serve through the engine: snapshot the loaded worker posteriors and
  // fold the task in through the cache.
  ctx.engine =
      std::make_unique<serve::SelectionEngine>(ServeOptionsFromArgs(args));
  ctx.engine->SetFolder(std::move(folder));
  ctx.engine->PublishSnapshot(
      serve::SkillMatrixSnapshot::FromPosteriors(snapshot.workers));
  for (WorkerId w : db.OnlineWorkers()) {
    if (w < snapshot.workers.size()) ctx.candidates.push_back(w);
  }
  ctx.db = std::move(db);
  return ctx;
}

/// One serving query through whichever path the context holds.
Result<std::vector<RankedWorker>> ServeQuery(const ServeContext& ctx,
                                             size_t top,
                                             serve::QueryStats* stats) {
  if (ctx.model != nullptr) {
    return ctx.model->SelectTopKExplained(ctx.bag, top, ctx.candidates, stats);
  }
  return ctx.engine->SelectTopK(ctx.bag, top, ctx.candidates,
                                /*rng=*/nullptr, stats);
}

/// Honors --explain-out: dumps the query's EXPLAIN payload as JSON.
/// Diagnostics only — failures are reported but do not fail the command.
void WriteExplainJson(const Args& args, const serve::QueryStats& stats) {
  const char* path = args.Get("explain-out");
  if (path == nullptr) return;
  std::ofstream out(path, std::ios::trunc);
  out << stats.ToJson() << "\n";
  if (out.good()) {
    std::fprintf(stderr, "explain payload written to %s\n", path);
  } else {
    std::fprintf(stderr, "error writing --explain-out %s\n", path);
  }
}

int CmdSelect(const Args& args) {
  auto ctx = MakeServeContext(args);
  if (!ctx.ok()) return Fail(ctx.status());
  const size_t top = static_cast<size_t>(args.GetInt("top", 3));
  // Attach QueryStats only when asked: the ranking is identical either
  // way, but stats widen the scan by one rank to compute the cutoff.
  const bool want_stats = args.Get("explain-out") != nullptr;
  serve::QueryStats stats;
  auto ranked = ServeQuery(*ctx, top, want_stats ? &stats : nullptr);
  if (!ranked.ok()) return Fail(ranked.status());
  std::printf("task: %s\n", ctx->task_text.c_str());
  for (const RankedWorker& rw : *ranked) {
    std::printf("  %-24s score %.3f\n",
                ctx->db.GetWorker(rw.worker).value()->handle.c_str(),
                rw.score);
  }
  if (want_stats) WriteExplainJson(args, stats);
  return 0;
}

int CmdExplain(const Args& args) {
  auto ctx = MakeServeContext(args);
  if (!ctx.ok()) return Fail(ctx.status());
  const size_t top = static_cast<size_t>(args.GetInt("top", 3));
  serve::QueryStats stats;
  auto ranked = ServeQuery(*ctx, top, &stats);
  if (!ranked.ok()) return Fail(ranked.status());
  std::printf("task: %s\n", ctx->task_text.c_str());
  std::fputs(stats.ToText().c_str(), stdout);
  WriteExplainJson(args, stats);
  return 0;
}

int CmdEvaluate(const Args& args) {
  const char* data = args.Get("data");
  if (!data) return Usage();
  auto db = ImportDatabaseCsvFiles(data);
  if (!db.ok()) return Fail(db.status());

  // CSV datasets do not carry ground truth, so evaluation defines the
  // right worker as the best-scored answerer of each held-out task —
  // exactly the paper's §7.2.2 definition.
  // Rebuild a SyntheticDataset-like split directly from the database.
  const size_t threshold = static_cast<size_t>(args.GetInt("threshold", 1));
  const WorkerGroup group = MakeGroup(*db, threshold, "group");

  // Manual split: sample resolved tasks with >= 3 in-group answerers.
  SyntheticDataset shim;
  shim.db = *db;
  shim.world.assignment.resize(db->NumTasks());
  shim.feedback.resize(db->NumTasks());
  for (const auto& a : db->assignments()) {
    if (!a.has_score) continue;
    shim.world.assignment[a.task].push_back(a.worker);
    shim.feedback[a.task].push_back(a.score);
  }
  SplitOptions split_options;
  split_options.num_test_tasks = static_cast<size_t>(args.GetInt("tests", 100));
  auto split = MakeSplit(shim, group, split_options);
  if (!split.ok()) return Fail(split.status());

  const size_t k = static_cast<size_t>(args.GetInt("k", 10));
  std::vector<SelectorFactory> factories;
  if (const char* models = args.Get("models")) {
    // Head-to-head comparison of registry models ("tdpm,router,ensemble")
    // instead of the VSM/TSPM/DRM/TDPM baseline table.
    std::vector<std::string> ids;
    for (const auto& piece : SplitAny(models, ",")) ids.push_back(piece);
    auto from_registry = ModelSelectorFactories(ids, ModelConfigFromArgs(args));
    if (!from_registry.ok()) return Fail(from_registry.status());
    factories = std::move(*from_registry);
  } else {
    factories = StandardSelectorFactories(k, 97);
  }
  auto results = RunExperiment(*split, factories);
  if (!results.ok()) return Fail(results.status());
  TableReporter table(StringPrintf(
      "Evaluation on %s (threshold %zu, K=%zu, %zu test tasks)", data,
      threshold, k, split->cases.size()));
  table.SetHeader({"Algorithm", "ACCU", "Top1", "Top2", "Train s",
                   "Select ms"});
  for (const auto& r : *results) {
    table.AddRow({r.name, TableReporter::Cell(r.mean_accu),
                  TableReporter::Cell(r.top1), TableReporter::Cell(r.top2),
                  TableReporter::Cell(r.train_seconds, 2),
                  TableReporter::Cell(r.select_millis, 3)});
  }
  table.Print(std::cout);

  // Model-quality telemetry: per-model accuracy gauges (quality.eval.*)
  // feed the time-series store and alert rules like any live metric, so
  // "ACCU dropped below X" can page from a batch evaluation too.
  {
    obs::MetricsRegistry& registry = obs::MetricsRegistry::Global();
    double tick = 0.0;
    const bool sample = args.Get("timeseries-out") != nullptr ||
                        args.Get("alert-rules") != nullptr;
    for (const auto& r : *results) {
      const std::string base = "quality.eval." + r.name + ".";
      registry.GetGauge(base + "accu")->Set(r.mean_accu);
      registry.GetGauge(base + "top1")->Set(r.top1);
      registry.GetGauge(base + "top2")->Set(r.top2);
      if (sample) {
        (void)obs::TimeSeriesStore::Global().SampleRegistry(tick);
        tick += 1.0;
      }
    }
    if (obs::AlertEngine::Global().NumRules() > 0) {
      (void)obs::AlertEngine::Global().EvaluateAll();
    }
  }
  if (const char* path = args.Get("quality-out")) {
    // One flat JSON object per model — the same jsonl dialect the
    // `report` command and the time-series dump speak.
    std::ofstream out(path);
    if (!out.is_open()) {
      return Fail(Status::IOError(
          std::string("cannot open --quality-out file: ") + path));
    }
    for (const auto& r : *results) {
      jsonl::Object obj;
      obj["model"] = r.name;
      obj["accu"] = r.mean_accu;
      obj["top1"] = r.top1;
      obj["top2"] = r.top2;
      obj["train_seconds"] = r.train_seconds;
      obj["select_millis"] = r.select_millis;
      out << jsonl::WriteObject(obj) << "\n";
    }
    out.close();
    if (!out.good()) {
      return Fail(Status::IOError(
          std::string("failed writing --quality-out file: ") + path));
    }
    std::fprintf(stderr, "quality report written to %s\n", path);
  }
  return 0;
}

StorageOptions StorageOptionsFromArgs(const Args& args) {
  StorageOptions options;
  options.num_shards = static_cast<size_t>(args.GetInt("shards", 8));
  options.sync_every_append = args.GetInt("fsync", 0) != 0;
  options.auto_checkpoint_every =
      static_cast<size_t>(args.GetInt("auto-checkpoint", 0));
  return options;
}

int CmdIngest(const Args& args) {
  const char* data = args.Get("data");
  const char* db_dir = args.Get("db-dir");
  if (!data || !db_dir) return Usage();
  auto db = ImportDatabaseCsvFiles(data);
  if (!db.ok()) return Fail(db.status());
  auto engine = CrowdStoreEngine::Open(db_dir, StorageOptionsFromArgs(args));
  if (!engine.ok()) return Fail(engine.status());
  Status st = (*engine)->BulkImport(*db);
  if (!st.ok()) return Fail(st);
  std::printf("ingested %zu workers, %zu tasks, %zu assignments into %s "
              "(%zu shards, checkpoint at seq %llu)\n",
              (*engine)->NumWorkers(), (*engine)->NumTasks(),
              (*engine)->NumAssignments(), db_dir, (*engine)->num_shards(),
              static_cast<unsigned long long>((*engine)->last_sequence()));
  return 0;
}

int CmdDbinfo(const Args& args) {
  const char* db_dir = args.Get("db-dir");
  if (!db_dir) return Usage();
  auto engine = CrowdStoreEngine::Open(db_dir, StorageOptionsFromArgs(args));
  if (!engine.ok()) return Fail(engine.status());
  const StorageOpenStats& open = (*engine)->open_stats();
  std::printf("database: %s\n", db_dir);
  std::printf("  workers %zu, tasks %zu, assignments %zu (%zu scored), "
              "latent dim %zu\n",
              (*engine)->NumWorkers(), (*engine)->NumTasks(),
              (*engine)->NumAssignments(), (*engine)->NumScoredAssignments(),
              (*engine)->latent_dim());
  std::printf("  checkpoint: %s (seq %llu), last seq %llu\n",
              open.checkpoint_loaded ? "loaded" : "none",
              static_cast<unsigned long long>(open.checkpoint_seq),
              static_cast<unsigned long long>((*engine)->last_sequence()));
  std::printf("  wal: %llu records scanned, %llu applied%s\n",
              static_cast<unsigned long long>(open.wal_records_scanned),
              static_cast<unsigned long long>(open.wal_records_applied),
              open.wal_torn_tail ? " (torn tail truncated)" : "");
  for (size_t s = 0; s < (*engine)->num_shards(); ++s) {
    const auto counts = (*engine)->CountsOfShard(s);
    std::printf("  shard %zu: %zu workers, %zu tasks, %zu assignments\n", s,
                counts.workers, counts.tasks, counts.assignments);
  }
  return 0;
}

int CmdSimulate(const Args& args) {
  const char* data = args.Get("data");
  const char* db_dir = args.Get("db-dir");
  if (!data && !db_dir) return Usage();

  // Two backends: --db-dir serves from the durable storage engine (every
  // simulated mutation is WAL-logged and survives a crash), --data keeps
  // the classic in-memory CrowdDatabase loaded from CSV.
  std::optional<CrowdDatabase> db;
  std::unique_ptr<CrowdStoreEngine> engine;
  if (db_dir) {
    auto opened = CrowdStoreEngine::Open(db_dir, StorageOptionsFromArgs(args));
    if (!opened.ok()) return Fail(opened.status());
    engine = std::move(*opened);
  } else {
    auto imported = ImportDatabaseCsvFiles(data);
    if (!imported.ok()) return Fail(imported.status());
    db = std::move(*imported);
  }

  // --model defaults to the classic TDPM path; any registry id swaps the
  // serving backend (the manager only sees the CrowdSelector interface).
  ModelConfig model_config = ModelConfigFromArgs(args);
  model_config.tdpm.max_em_iterations =
      static_cast<int>(args.GetInt("iters", 10));
  auto created = CrowdModelRegistry::Global().Create(
      args.Get("model", "tdpm"), model_config);
  if (!created.ok()) return Fail(created.status());
  std::unique_ptr<CrowdModel> selector = std::move(*created);
  auto manager = engine
                     ? std::make_unique<CrowdManager>(engine.get(),
                                                      std::move(selector))
                     : std::make_unique<CrowdManager>(&*db,
                                                      std::move(selector));
  manager->set_live_skill_updates(args.GetInt("live-updates", 0) != 0);

  // Online shadow evaluation: score every prediction against realized
  // feedback before fold-in (serve/quality_monitor.h). Enabled by
  // --quality-out (report wanted) or implicitly by --alert-rules /
  // --timeseries-out, since quality gauges are what those watch.
  std::unique_ptr<serve::QualityMonitor> quality;
  if (args.Get("quality-out") != nullptr ||
      args.Get("alert-rules") != nullptr ||
      args.Get("timeseries-out") != nullptr) {
    serve::QualityMonitorConfig qconfig;
    qconfig.model_id = args.Get("model", "tdpm");
    qconfig.window_size =
        static_cast<size_t>(args.GetInt("quality-window", 50));
    if (qconfig.window_size == 0) qconfig.window_size = 50;
    if (const char* z = args.Get("drift-z")) {
      const double threshold = std::atof(z);
      if (threshold > 0.0) qconfig.drift_z_threshold = threshold;
    }
    quality = std::make_unique<serve::QualityMonitor>(qconfig);
    manager->set_resolved_observer(quality.get());
  }

  Status st = manager->InferCrowdModel();
  if (!st.ok()) return Fail(st);

  // Simulated crowd: workers echo the task text back; feedback follows
  // each worker's historical mean score (plus mild noise), so workers
  // keep performing at the level the model was trained on and a healthy
  // run's predictions genuinely correlate with realized feedback.
  // Drift injection (--drift-after N): once N tasks have resolved, a
  // deterministic fraction of workers turns spammer — near-zero feedback
  // regardless of the model's opinion of them — which is exactly the
  // regime shift the quality monitor's drift detectors must catch.
  std::unordered_map<WorkerId, double> base_score;
  {
    const CrowdDatabase* history = nullptr;
    std::shared_ptr<const CrowdDatabase> frozen;
    if (engine) {
      auto view = engine->FrozenView();
      if (!view.ok()) return Fail(view.status());
      frozen = std::move(*view);
      history = frozen.get();
    } else {
      history = &*db;
    }
    std::unordered_map<WorkerId, std::pair<double, uint64_t>> sums;
    for (const AssignmentRecord& a : history->assignments()) {
      if (!a.has_score) continue;
      auto& acc = sums[a.worker];
      acc.first += a.score;
      ++acc.second;
    }
    for (const auto& [worker, acc] : sums) {
      base_score[worker] = acc.first / static_cast<double>(acc.second);
    }
  }
  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 0xC0FFEE)));
  const size_t drift_after =
      static_cast<size_t>(args.GetInt("drift-after", 0));
  const int drift_pct = static_cast<int>(
      100.0 * std::atof(args.Get("drift-workers", "0.3")));
  size_t processed = 0;
  auto answer_fn = [](WorkerId, const TaskRecord& task) {
    return "re: " + task.text;
  };
  auto feedback_fn = [&rng, &processed, &base_score, drift_after,
                      drift_pct](WorkerId worker, const TaskRecord&,
                                 const std::string&) {
    // Spread the flipped set across the id space: generated worlds
    // correlate id order with skill, so a contiguous id block would flip
    // an entire skill tier at once instead of scattered workers.
    if (drift_after > 0 && processed >= drift_after &&
        static_cast<int>((worker * 37 + 11) % 100) < drift_pct) {
      return std::max(0.0, rng.Normal(0.05, 0.05));
    }
    const auto it = base_score.find(worker);
    const double mean = it == base_score.end() ? 2.0 : it->second;
    return std::max(0.0, mean + rng.Normal(0.0, 0.25));
  };
  auto dispatcher =
      engine ? std::make_unique<TaskDispatcher>(engine.get(), answer_fn,
                                                feedback_fn)
             : std::make_unique<TaskDispatcher>(&*db, answer_fn, feedback_fn);

  const size_t num_tasks = static_cast<size_t>(args.GetInt("tasks", 5));
  const size_t top = static_cast<size_t>(args.GetInt("top", 3));
  // SLO monitoring: rotate the sliding latency windows every N processed
  // tasks so the slo.* gauges track a moving recent horizon instead of
  // the whole run. Optionally keep a Prometheus exposition file fresh in
  // the background while the simulation runs.
  const size_t slo_window = static_cast<size_t>(args.GetInt("slo-window", 0));
  std::unique_ptr<obs::PeriodicStatsExporter> exporter;
  if (const char* prom = args.Get("prom-out")) {
    const long interval_ms = args.GetInt("prom-interval-ms", 0);
    if (interval_ms != 0) {
      // Create() rejects a non-positive interval with InvalidArgument
      // instead of the constructor's silent clamp, so a typoed
      // --prom-interval-ms fails the command up front.
      auto exporter_or = obs::PeriodicStatsExporter::Create(
          prom, static_cast<double>(interval_ms) / 1e3);
      if (!exporter_or.ok()) return Fail(exporter_or.status());
      exporter = std::move(*exporter_or);
    }
  }
  // Reuse existing task texts as the stream of incoming tasks. Copy first:
  // ProcessTask appends tasks and would invalidate iterators; the engine
  // backend hands out a frozen view for the same reason.
  std::vector<std::string> texts;
  if (engine) {
    auto view = engine->FrozenView();
    if (!view.ok()) return Fail(view.status());
    for (const TaskRecord& task : (*view)->tasks()) {
      texts.push_back(task.text);
      if (texts.size() >= num_tasks) break;
    }
  } else {
    for (const TaskRecord& task : db->tasks()) {
      texts.push_back(task.text);
      if (texts.size() >= num_tasks) break;
    }
  }
  // Crash-path testing (tests/integration/cli_crash_dump_test.cmake):
  // abort mid-run after N tasks so the crash handler's dump can be
  // inspected. 0 (the default) disables.
  const long crash_after =
      args.GetInt("crash-after-tasks", 0);
  // Per-task telemetry tick: sample every counter/gauge into the
  // time-series store (t = task index, so replays are deterministic)
  // and sweep the alert rules — rate() rules read the sampled history.
  const bool tick_timeseries = args.Get("timeseries-out") != nullptr ||
                               args.Get("alert-rules") != nullptr;
  const bool tick_alerts = obs::AlertEngine::Global().NumRules() > 0;
  for (const std::string& text : texts) {
    auto answers = manager->ProcessTask(text, top, dispatcher.get());
    if (!answers.ok()) return Fail(answers.status());
    ++processed;
    if (crash_after > 0 && processed >= static_cast<size_t>(crash_after)) {
      std::fprintf(stderr,
                   "deliberately aborting after %zu tasks "
                   "(--crash-after-tasks)\n",
                   processed);
      std::abort();
    }
    if (slo_window > 0 && processed % slo_window == 0) {
      obs::SloTracker::Global().RotateAll();
    }
    if (tick_timeseries) {
      (void)obs::TimeSeriesStore::Global().SampleRegistry(
          static_cast<double>(processed));
    }
    if (tick_alerts) (void)obs::AlertEngine::Global().EvaluateAll();
  }
  if (engine) {
    // Fold the simulated mutations into the checkpoint so the next open
    // replays nothing.
    st = engine->Checkpoint();
    if (!st.ok()) return Fail(st);
  }
  if (slo_window > 0) {
    // Final rotation publishes the tail window into the slo.* gauges, so
    // --stats-out / --prom-out snapshots taken after the loop see it.
    obs::SloTracker::Global().RotateAll();
  }
  if (quality != nullptr) {
    // Publish the final partial quality window, then detach before the
    // monitor dies (the manager outlives this scope on some paths).
    quality->RotateWindows();
    manager->set_resolved_observer(nullptr);
    if (tick_timeseries) {
      (void)obs::TimeSeriesStore::Global().SampleRegistry(
          static_cast<double>(processed + 1));
    }
    if (const char* path = args.Get("quality-out")) {
      std::ofstream out(path);
      if (!out.is_open()) {
        return Fail(Status::IOError(
            std::string("cannot open --quality-out file: ") + path));
      }
      out << quality->SummaryJson() << "\n";
      out.close();
      if (!out.good()) {
        return Fail(Status::IOError(
            std::string("failed writing --quality-out file: ") + path));
      }
      std::fprintf(stderr, "quality report written to %s\n", path);
    }
  }
  if (exporter != nullptr) {
    const Status stop_status = exporter->Stop();
    if (!stop_status.ok()) {
      std::fprintf(stderr, "error writing periodic --prom-out: %s\n",
                   stop_status.ToString().c_str());
    }
  }
  std::printf("simulated %zu tasks through the blue path: %zu answers "
              "collected from top-%zu crowds\n",
              dispatcher->tasks_dispatched(), dispatcher->answers_collected(),
              top);
  return 0;
}

/// Synthetic serve workload for on-demand diagnostics: publishes a random
/// skill matrix, runs --queries top-k scans against it, then dumps the
/// flight recorder — the same JSONL a crash dump contains, produced
/// without crashing. Doubles as the profiler's standard workload:
///   crowdselect_cli debug-dump --queries 10000 --profile-out prof.txt
int CmdDebugDump(const Args& args) {
  const size_t workers = static_cast<size_t>(args.GetInt("workers", 5000));
  const size_t dims = static_cast<size_t>(args.GetInt("k", 16));
  const size_t queries = static_cast<size_t>(args.GetInt("queries", 1000));
  const size_t top = static_cast<size_t>(args.GetInt("top", 5));
  if (workers == 0 || dims == 0) {
    return Fail(Status::InvalidArgument(
        "debug-dump needs --workers >= 1 and --k >= 1"));
  }

  Rng rng(static_cast<uint64_t>(args.GetInt("seed", 0xD1A6)));
  Matrix skills(workers, dims);
  for (size_t w = 0; w < workers; ++w) {
    double* row = skills.RowPtr(w);
    for (size_t d = 0; d < dims; ++d) row[d] = rng.Uniform();
  }
  serve::SelectionEngine engine(ServeOptionsFromArgs(args));
  engine.PublishSnapshot(serve::SkillMatrixSnapshot::FromMatrix(
      std::move(skills)));
  std::vector<WorkerId> candidates(workers);
  for (size_t w = 0; w < workers; ++w) candidates[w] = static_cast<WorkerId>(w);

  // One query event per scan: RankByCategory bypasses SelectTopK's query
  // instrumentation, so mark each iteration explicitly — the dump then
  // carries a meaningful event stream even for small inline scans.
  static const uint16_t query_name =
      obs::FlightRecorder::Global().InternName("cli.debug_dump.query");
  for (size_t q = 0; q < queries; ++q) {
    Vector category(dims);
    for (size_t d = 0; d < dims; ++d) category[d] = rng.Uniform();
    obs::FlightRecorder::Global().Record(obs::FlightEventType::kQuery,
                                         query_name, q, top);
    auto ranked = engine.RankByCategory(category, top, candidates);
    if (!ranked.ok()) return Fail(ranked.status());
  }

  if (const char* out = args.Get("out")) {
    Status st = obs::WriteDiagnosticDump(out, "debug_dump");
    if (!st.ok()) return Fail(st);
    std::printf("flight-recorder dump written to %s (%llu events recorded, "
                "%zu queries over %zu workers)\n",
                out,
                static_cast<unsigned long long>(
                    obs::FlightRecorder::Global().total_events()),
                queries, workers);
  } else {
    std::fputs(obs::FlightRecorder::Global().Dump("debug_dump").c_str(),
               stdout);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// report: render a quality report from a time-series dump
// ---------------------------------------------------------------------------

/// Per-series aggregate computed from a --timeseries-out dump.
struct SeriesSummary {
  uint64_t count = 0;
  double t_first = 0.0;
  double t_last = 0.0;
  double v_first = 0.0;
  double v_last = 0.0;
  double v_min = 0.0;
  double v_max = 0.0;
  double v_sum = 0.0;

  double Mean() const {
    return count == 0 ? 0.0 : v_sum / static_cast<double>(count);
  }
};

Result<std::map<std::string, SeriesSummary>> LoadTimeSeriesDump(
    const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IOError("cannot open time-series dump: " + path);
  std::map<std::string, SeriesSummary> series;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty()) continue;
    auto obj = jsonl::ParseObject(line);
    if (!obj.ok()) {
      return Status::Corruption("bad time-series line " +
                                std::to_string(line_no) + ": " +
                                obj.status().message());
    }
    const auto name_it = obj->find("series");
    const auto t_it = obj->find("t");
    const auto v_it = obj->find("v");
    if (name_it == obj->end() ||
        !std::holds_alternative<std::string>(name_it->second) ||
        t_it == obj->end() || !std::holds_alternative<double>(t_it->second) ||
        v_it == obj->end() || !std::holds_alternative<double>(v_it->second)) {
      return Status::Corruption("time-series line " + std::to_string(line_no) +
                                " is not {series, t, v}");
    }
    const double t = std::get<double>(t_it->second);
    const double v = std::get<double>(v_it->second);
    SeriesSummary& s = series[std::get<std::string>(name_it->second)];
    if (s.count == 0) {
      s.t_first = t;
      s.v_first = v;
      s.v_min = v;
      s.v_max = v;
    }
    ++s.count;
    s.t_last = t;
    s.v_last = v;
    s.v_min = std::min(s.v_min, v);
    s.v_max = std::max(s.v_max, v);
    s.v_sum += v;
  }
  return series;
}

/// Renders the model-quality report. Markdown groups the quality.* and
/// alert.* series into their own sections (the interesting ones) with
/// everything else in an appendix; JSON emits one flat object per
/// series — the same jsonl dialect the dump itself uses, so downstream
/// tooling needs exactly one parser.
int CmdReport(const Args& args) {
  const char* ts_path = args.Get("timeseries");
  if (!ts_path) return Usage();
  auto series = LoadTimeSeriesDump(ts_path);
  if (!series.ok()) return Fail(series.status());

  // Optional quality report lines (simulate/evaluate --quality-out),
  // echoed into the report verbatim-ish.
  std::vector<jsonl::Object> quality_lines;
  if (const char* qpath = args.Get("quality")) {
    std::ifstream in(qpath);
    if (!in) {
      return Fail(Status::IOError(std::string("cannot open quality file: ") +
                                  qpath));
    }
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      auto obj = jsonl::ParseObject(line);
      if (!obj.ok()) return Fail(obj.status());
      quality_lines.push_back(std::move(*obj));
    }
  }

  const std::string format = args.Get("format", "md");
  std::string out;
  if (format == "json") {
    for (const auto& [name, s] : *series) {
      jsonl::Object obj;
      obj["series"] = name;
      obj["count"] = static_cast<double>(s.count);
      obj["t_first"] = s.t_first;
      obj["t_last"] = s.t_last;
      obj["v_first"] = s.v_first;
      obj["v_last"] = s.v_last;
      obj["v_min"] = s.v_min;
      obj["v_max"] = s.v_max;
      obj["v_mean"] = s.Mean();
      out += jsonl::WriteObject(obj) + "\n";
    }
    for (const jsonl::Object& q : quality_lines) {
      out += jsonl::WriteObject(q) + "\n";
    }
  } else if (format == "md") {
    auto row = [](const std::string& name, const SeriesSummary& s) {
      return StringPrintf("| %s | %llu | %.4g | %.4g | %.4g | %.4g | %.4g |\n",
                          name.c_str(),
                          static_cast<unsigned long long>(s.count), s.v_first,
                          s.v_last, s.v_min, s.v_max, s.Mean());
    };
    const std::string header =
        "| series | points | first | last | min | max | mean |\n"
        "|---|---|---|---|---|---|---|\n";
    std::string quality_rows;
    std::string alert_rows;
    std::string other_rows;
    for (const auto& [name, s] : *series) {
      if (name.rfind("quality.", 0) == 0) {
        quality_rows += row(name, s);
      } else if (name.rfind("alert.", 0) == 0) {
        alert_rows += row(name, s);
      } else {
        other_rows += row(name, s);
      }
    }
    out += "# Model-quality report\n\n";
    out += StringPrintf("Source: `%s` (%zu series)\n\n", ts_path,
                        series->size());
    if (!quality_lines.empty()) {
      out += "## Quality summary\n\n";
      for (const jsonl::Object& q : quality_lines) {
        out += "- `" + jsonl::WriteObject(q) + "`\n";
      }
      out += "\n";
    }
    if (!quality_rows.empty()) {
      out += "## Quality signals\n\n" + header + quality_rows + "\n";
    }
    if (!alert_rows.empty()) {
      out += "## Alerts\n\n" + header + alert_rows + "\n";
    }
    if (!other_rows.empty()) {
      out += "## All other metrics\n\n" + header + other_rows + "\n";
    }
  } else {
    return Fail(Status::InvalidArgument("unknown --format: " + format +
                                        " (expected md or json)"));
  }

  if (const char* path = args.Get("out")) {
    std::ofstream file(path);
    if (!file.is_open()) {
      return Fail(
          Status::IOError(std::string("cannot open --out file: ") + path));
    }
    file << out;
    file.close();
    if (!file.good()) {
      return Fail(
          Status::IOError(std::string("failed writing --out file: ") + path));
    }
    std::printf("report written to %s\n", path);
  } else {
    std::fputs(out.c_str(), stdout);
  }
  return 0;
}

/// Honors --stats-out / --trace-out after the command ran. Failures here
/// are diagnostics, not command failures: the exit code stays the
/// command's own.
void WriteObservabilityOutputs(const Args& args) {
  // Final alert sweep first, so the states serialized below (JSON
  // "alerts" section, crowdselect_alert_state family) reflect the
  // run's end-of-life metric values even for commands without their
  // own evaluation cadence.
  if (obs::AlertEngine::Global().NumRules() > 0) {
    (void)obs::AlertEngine::Global().EvaluateAll();
  }
  const obs::StatsReporter reporter;
  if (const char* path = args.Get("stats-out")) {
    const Status st = reporter.WriteJsonFile(path);
    if (st.ok()) {
      std::fprintf(stderr, "stats snapshot written to %s\n", path);
    } else {
      std::fprintf(stderr, "error writing --stats-out: %s\n",
                   st.ToString().c_str());
    }
  }
  if (const char* path = args.Get("trace-out")) {
    const Status st = reporter.WriteChromeTraceFile(path);
    if (st.ok()) {
      std::fprintf(stderr, "chrome trace written to %s\n", path);
    } else {
      std::fprintf(stderr, "error writing --trace-out: %s\n",
                   st.ToString().c_str());
    }
  }
  if (const char* path = args.Get("prom-out")) {
    const Status st = reporter.WritePrometheusFile(path);
    if (st.ok()) {
      std::fprintf(stderr, "prometheus exposition written to %s\n", path);
    } else {
      std::fprintf(stderr, "error writing --prom-out: %s\n",
                   st.ToString().c_str());
    }
  }
  if (const char* path = args.Get("timeseries-out")) {
    obs::TimeSeriesStore& store = obs::TimeSeriesStore::Global();
    // Commands without their own sampling cadence still get one point
    // per series — a dump is never empty just because nothing ticked.
    if (store.total_points() == 0) (void)store.SampleRegistry(0.0);
    const Status st = store.WriteJsonlFile(path);
    if (st.ok()) {
      std::fprintf(stderr, "time-series dump written to %s (%llu points, "
                   "%zu series)\n", path,
                   static_cast<unsigned long long>(store.total_points()),
                   store.num_series());
    } else {
      std::fprintf(stderr, "error writing --timeseries-out: %s\n",
                   st.ToString().c_str());
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = Parse(argc, argv);
  if (const Status st = SetupDiagnostics(args); !st.ok()) return Fail(st);
  int rc = -1;
  if (args.command == "generate") {
    rc = CmdGenerate(args);
  } else if (args.command == "stats") {
    rc = CmdStats(args);
  } else if (args.command == "train") {
    rc = CmdTrain(args);
  } else if (args.command == "select") {
    rc = CmdSelect(args);
  } else if (args.command == "explain") {
    rc = CmdExplain(args);
  } else if (args.command == "evaluate") {
    rc = CmdEvaluate(args);
  } else if (args.command == "simulate") {
    rc = CmdSimulate(args);
  } else if (args.command == "ingest") {
    rc = CmdIngest(args);
  } else if (args.command == "dbinfo") {
    rc = CmdDbinfo(args);
  } else if (args.command == "debug-dump") {
    rc = CmdDebugDump(args);
  } else if (args.command == "report") {
    rc = CmdReport(args);
  } else {
    return Usage();
  }
  WriteObservabilityOutputs(args);
  FinishDiagnostics(args);
  return rc;
}
