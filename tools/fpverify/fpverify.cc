// fpverify: post-build guard for the kernel determinism contract.
//
// The score kernels (src/serve/kernels/) are compiled with
// -ffp-contract=off so scalar and SIMD paths stay bitwise-identical;
// cslint's fp-determinism pass rejects fused-multiply-add at the
// source level. This tool closes the loop at the object level: it
// disassembles each kernel object with objdump and fails if any
// fused-multiply-add instruction was emitted anyway (a flag regression,
// a new TU missing the flag, or an intrinsic that slipped past lint).
//
// Usage: fpverify [--skip-exit=N] object.o... | @objects.txt
//
// An @file argument names a response file holding object paths
// separated by semicolons or newlines — how CMake's file(GENERATE)
// writes $<TARGET_OBJECTS:...>, which add_test cannot expand inline.
//
// Exit codes: 0 clean, 1 FMA encodings found, 2 usage/tool error, and
// --skip-exit's value (for ctest SKIP_RETURN_CODE) when objdump is
// unavailable on the host.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

namespace {

// Fused-multiply-add mnemonic prefixes across the ISAs we build for.
// x86-64 AVX/FMA3: vfmadd132ss, vfmsub231pd, vfnmadd..., vfmaddsub...;
// AArch64 scalar/NEON/SVE: fmadd, fmsub, fnmadd, fnmsub, fmla, fmls,
// fnmla, fnmls, fmlal(b/t), fmlsl. Plain "fadd"/"fmul" are fine.
const char* const kFmaPrefixes[] = {
    "vfmadd", "vfmsub", "vfnmadd", "vfnmsub", "vfmaddsub", "vfmsubadd",
    "fmadd",  "fmsub",  "fnmadd",  "fnmsub",  "fmla",      "fmls",
    "fnmla",  "fnmls",  "fmlal",   "fmlsl",
};

bool IsFmaMnemonic(const std::string& mnemonic) {
  for (const char* prefix : kFmaPrefixes) {
    if (mnemonic.rfind(prefix, 0) == 0) return true;
  }
  return false;
}

// Extracts the mnemonic from one objdump -d line, or "" for non-code
// lines. Disassembly lines look like
//   "  123:\t c5 f9 6f 05 ...\tvmovdqa 0x0(%rip),%xmm0"
// (GNU objdump separates address, encoding bytes, and text with tabs).
std::string MnemonicOf(const std::string& line) {
  const size_t first_tab = line.find('\t');
  if (first_tab == std::string::npos) return "";
  const size_t second_tab = line.find('\t', first_tab + 1);
  if (second_tab == std::string::npos) return "";
  size_t start = second_tab + 1;
  while (start < line.size() && line[start] == ' ') ++start;
  size_t stop = start;
  while (stop < line.size() && line[stop] != ' ' && line[stop] != '\t') {
    ++stop;
  }
  return line.substr(start, stop - start);
}

// Returns true when `command --version` runs and exits 0 — the probe
// for whether objdump exists on this host.
bool ToolAvailable(const std::string& command) {
  const std::string probe = command + " --version >/dev/null 2>&1";
  const int status = std::system(probe.c_str());
  return status == 0;
}

struct Violation {
  std::string object;
  std::string symbol;
  std::string mnemonic;
  std::string line;
};

// Disassembles one object and appends any FMA hits. Returns false when
// objdump itself failed on the file.
bool ScanObject(const std::string& objdump, const std::string& object,
                std::vector<Violation>* violations) {
  const std::string command = objdump + " -d " + object + " 2>/dev/null";
  std::FILE* pipe = ::popen(command.c_str(), "r");
  if (pipe == nullptr) return false;

  std::string current_symbol = "?";
  char buffer[4096];
  while (std::fgets(buffer, sizeof(buffer), pipe) != nullptr) {
    std::string line(buffer);
    while (!line.empty() && (line.back() == '\n' || line.back() == '\r')) {
      line.pop_back();
    }
    // Symbol headers look like "0000000000000000 <_ZN...>:".
    const size_t open = line.find(" <");
    if (!line.empty() && line.back() == ':' && open != std::string::npos &&
        line.find('\t') == std::string::npos) {
      current_symbol = line.substr(open + 2, line.size() - open - 4);
      continue;
    }
    const std::string mnemonic = MnemonicOf(line);
    if (!mnemonic.empty() && IsFmaMnemonic(mnemonic)) {
      violations->push_back(Violation{object, current_symbol, mnemonic, line});
    }
  }
  return ::pclose(pipe) == 0;
}

// Appends the entries of response file `path` (semicolon- or
// newline-separated object paths) to `objects`. Returns false when the
// file cannot be read.
bool ReadResponseFile(const std::string& path,
                      std::vector<std::string>* objects) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  std::string text;
  char buffer[4096];
  size_t n = 0;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    text.append(buffer, n);
  }
  std::fclose(f);
  std::string entry;
  for (const char c : text + ";") {
    if (c == ';' || c == '\n' || c == '\r') {
      if (!entry.empty()) objects->push_back(entry);
      entry.clear();
    } else {
      entry.push_back(c);
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  int skip_exit = 0;
  std::vector<std::string> objects;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--skip-exit=", 0) == 0) {
      skip_exit = std::atoi(arg.c_str() + std::strlen("--skip-exit="));
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "fpverify: unknown flag %s\n", arg.c_str());
      return 2;
    } else if (!arg.empty() && arg[0] == '@') {
      if (!ReadResponseFile(arg.substr(1), &objects)) {
        std::fprintf(stderr, "fpverify: cannot read response file %s\n",
                     arg.c_str() + 1);
        return 2;
      }
    } else {
      objects.push_back(arg);
    }
  }
  if (objects.empty()) {
    std::fprintf(
        stderr,
        "usage: fpverify [--skip-exit=N] object.o... | @objects.txt\n");
    return 2;
  }

  const char* objdump_env = std::getenv("FPVERIFY_OBJDUMP");
  const std::string objdump =
      objdump_env != nullptr && objdump_env[0] != '\0' ? objdump_env
                                                       : "objdump";
  if (!ToolAvailable(objdump)) {
    std::fprintf(stderr, "fpverify: %s not found; skipping FMA check\n",
                 objdump.c_str());
    return skip_exit;
  }

  std::vector<Violation> violations;
  for (const std::string& object : objects) {
    if (!ScanObject(objdump, object, &violations)) {
      std::fprintf(stderr, "fpverify: %s -d %s failed\n", objdump.c_str(),
                   object.c_str());
      return 2;
    }
  }

  if (!violations.empty()) {
    for (const Violation& v : violations) {
      std::fprintf(stderr, "fpverify: %s: %s in <%s>:%s\n", v.object.c_str(),
                   v.mnemonic.c_str(), v.symbol.c_str(), v.line.c_str());
    }
    std::fprintf(
        stderr,
        "fpverify: %zu fused-multiply-add encoding(s) in kernel objects; "
        "kernels must stay unfused (-ffp-contract=off, no FMA "
        "intrinsics) to keep scalar and SIMD scores bitwise equal\n",
        violations.size());
    return 1;
  }
  std::printf("fpverify: %zu object(s) clean of FMA encodings\n",
              objects.size());
  return 0;
}
