// Phase 1 of cslint v2: the project-wide symbol index.
//
// ExtractSymbols() turns one lexed source file into its FileSymbols —
// function definitions with their call sites, lock-acquisition sites,
// and annotations, plus the Status/Result declaration names the
// discarded-status rule needs. Extraction is the expensive part of a
// run (a character-level scan with brace/paren matching per file), so
// the result is persisted to a cache file keyed by the file's content
// hash: incremental runs re-extract only files whose bytes changed.
//
// The extractor is a heuristic C++ scanner, not a compiler front end.
// It understands enough structure for whole-program rule passes —
// definition extents, qualified names, call targets, guard scopes —
// and it fails open (a construct it cannot parse yields no symbols,
// never a crash or a bogus extent).
#ifndef CROWDSELECT_TOOLS_CSLINT_INDEX_H_
#define CROWDSELECT_TOOLS_CSLINT_INDEX_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "source_file.h"

namespace cslint {

/// A call site inside a function body. `name` is the last identifier
/// before the '(' ("DumpToFd" for `recorder.DumpToFd(...)`); `qualifier`
/// is the explicit `Class::` chain when written ("FlightRecorder" for
/// `FlightRecorder::Global()`), empty otherwise. `new`/`delete`
/// expressions are recorded with the reserved names "::new"/"::delete".
struct CallSite {
  std::string name;
  std::string qualifier;
  int line = 0;  // 1-based.
  // Written as a member access (`obj.name(...)` / `ptr->name(...)`).
  // Member calls that resolve to methods of several unrelated classes
  // are treated as unresolvable rather than linking to all of them.
  bool member = false;
};

/// A mutex acquisition: a std::lock_guard/unique_lock/shared_lock/
/// scoped_lock construction, or a raw .lock()/.lock_shared() call.
/// `lock_class` comes from the `// cs:lock(class)` annotation on the
/// site (empty when unannotated); `scope_end` is the last line of the
/// block the guard lives in (the function's last line for raw calls).
struct LockSite {
  std::string lock_class;
  int line = 0;
  int scope_end = 0;
  bool shared = false;
  bool raw_call = false;
};

/// One function (or method) definition.
struct FunctionInfo {
  std::string name;       // Last component: "DumpToFd".
  std::string qualifier;  // Explicit or enclosing-class scope, may be "".
  int line = 0;           // Header line, 1-based.
  int end_line = 0;       // Closing-brace line.
  bool signal_safe = false;  // `// cs:signal-safe` annotation present.
  std::vector<CallSite> calls;
  std::vector<LockSite> locks;
};

/// Everything phase 1 extracts from one file.
struct FileSymbols {
  std::vector<FunctionInfo> functions;
  // Names declared returning util::Status / util::Result<T>, and names
  // declared with any other return type (for ambiguity pruning).
  std::vector<std::string> status_decls;
  std::vector<std::string> other_decls;
};

/// Scans `file` and extracts its symbols.
FileSymbols ExtractSymbols(const SourceFile& file);

/// FNV-1a 64 over raw bytes; the cache key for one file's extraction.
uint64_t HashFileBytes(const std::string& path, bool* ok);

// ---------------------------------------------------------------------------
// Extraction cache. Format is line-oriented text: a header naming the
// extractor version, then one block per file. A version or hash
// mismatch simply drops the entry — the cache is always safe to delete.

struct CachedFile {
  uint64_t content_hash = 0;
  FileSymbols symbols;
};

class SymbolCache {
 public:
  /// Loads `path`; a missing/corrupt/version-skewed file yields an empty
  /// cache (never an error — the cache is an accelerator, not state).
  void Load(const std::string& path);

  /// Writes every entry back to `path`. Returns false on I/O failure.
  bool Save(const std::string& path) const;

  /// Returns the cached symbols for `rel_path` when `content_hash`
  /// matches, nullptr otherwise.
  const FileSymbols* Lookup(const std::string& rel_path,
                            uint64_t content_hash) const;

  /// Inserts/overwrites the entry for `rel_path`.
  void Put(const std::string& rel_path, uint64_t content_hash,
           const FileSymbols& symbols);

  /// Drops entries for files not in `live_paths` (deleted/renamed files).
  void Prune(const std::vector<std::string>& live_paths);

  size_t size() const { return entries_.size(); }
  int hits() const { return hits_; }
  int misses() const { return misses_; }

 private:
  std::map<std::string, CachedFile> entries_;
  mutable int hits_ = 0;
  mutable int misses_ = 0;
};

}  // namespace cslint

#endif  // CROWDSELECT_TOOLS_CSLINT_INDEX_H_
