#include "source_file.h"

#include <algorithm>
#include <fstream>
#include <regex>
#include <sstream>

namespace cslint {

namespace {

// `// cslint: allow(<rule>)` — optionally followed by a reason.
const std::regex kAllowRe(R"(cslint:\s*allow\(([a-z0-9-]+)\))");

const std::string kEmpty;

}  // namespace

bool SourceFile::Load(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return false;
  std::ostringstream buf;
  buf << in.rdbuf();
  path_ = path;
  Lex(buf.str());
  return true;
}

void SourceFile::LoadFromString(const std::string& path,
                                const std::string& text) {
  path_ = path;
  Lex(text);
}

const std::string& SourceFile::CommentAt(int line) const {
  if (line < 1 || line > static_cast<int>(comments_.size())) return kEmpty;
  return comments_[line - 1];
}

bool SourceFile::IsAllowed(int line, const std::string& rule) const {
  for (int l : {line, line - 1}) {
    auto it = allow_.find(l);
    if (it != allow_.end() && it->second.count(rule)) {
      used_allow_.insert({l, rule});
      return true;
    }
  }
  return false;
}

std::vector<AllowSite> SourceFile::AllowSites() const {
  std::vector<AllowSite> sites;
  for (const auto& [line, rules] : allow_) {
    for (const std::string& rule : rules) {
      sites.push_back(AllowSite{line, rule});
    }
  }
  std::sort(sites.begin(), sites.end(),
            [](const AllowSite& a, const AllowSite& b) {
              return a.line != b.line ? a.line < b.line : a.rule < b.rule;
            });
  return sites;
}

std::vector<AllowSite> SourceFile::StaleAllowSites() const {
  std::vector<AllowSite> stale;
  for (const AllowSite& site : AllowSites()) {
    if (!used_allow_.count({site.line, site.rule})) stale.push_back(site);
  }
  return stale;
}

void SourceFile::Lex(const std::string& text) {
  enum class State {
    kCode,
    kLineComment,
    kBlockComment,
    kString,
    kRawString,
    kChar,
  };
  State state = State::kCode;
  std::string raw_line, code_line, comment_line, literal, raw_delim;
  int line_no = 1;
  int literal_line = 1;

  auto flush_line = [&] {
    raw_.push_back(raw_line);
    code_.push_back(code_line);
    comments_.push_back(comment_line);
    std::smatch m;
    if (std::regex_search(comment_line, m, kAllowRe)) {
      allow_[line_no].insert(m[1].str());
    }
    raw_line.clear();
    code_line.clear();
    comment_line.clear();
    ++line_no;
  };

  const size_t n = text.size();
  for (size_t i = 0; i < n; ++i) {
    const char c = text[i];
    const char next = i + 1 < n ? text[i + 1] : '\0';
    if (c == '\n') {
      if (state == State::kLineComment) state = State::kCode;
      flush_line();
      continue;
    }
    raw_line += c;
    switch (state) {
      case State::kCode:
        if (c == '/' && next == '/') {
          state = State::kLineComment;
          raw_line += next;
          comment_line += "//";
          ++i;
        } else if (c == '/' && next == '*') {
          state = State::kBlockComment;
          raw_line += next;
          ++i;
        } else if (c == 'R' && next == '"' &&
                   (i == 0 || (!isalnum(static_cast<unsigned char>(
                                   text[i - 1])) &&
                               text[i - 1] != '_'))) {
          // Raw string literal: R"delim( ... )delim".
          state = State::kRawString;
          code_line += "R\"";
          raw_line += next;
          ++i;
          raw_delim.clear();
          while (i + 1 < n && text[i + 1] != '(') {
            raw_delim += text[i + 1];
            raw_line += text[i + 1];
            code_line += text[i + 1];
            ++i;
          }
          if (i + 1 < n) {  // The '('.
            raw_line += text[i + 1];
            code_line += '(';
            ++i;
          }
          literal.clear();
          literal_line = line_no;
        } else if (c == '"') {
          state = State::kString;
          code_line += '"';
          literal.clear();
          literal_line = line_no;
        } else if (c == '\'') {
          state = State::kChar;
          code_line += '\'';
        } else {
          code_line += c;
        }
        break;
      case State::kLineComment:
        comment_line += c;
        break;
      case State::kBlockComment:
        if (c == '*' && next == '/') {
          state = State::kCode;
          raw_line += next;
          ++i;
        }
        break;
      case State::kString:
        if (c == '\\' && next != '\0') {
          literal += c;
          literal += next;
          code_line += "  ";
          raw_line += next;
          if (next == '\n') {  // Escaped newline inside a literal.
            raw_line.pop_back();
            flush_line();
          }
          ++i;
        } else if (c == '"') {
          state = State::kCode;
          code_line += '"';
          strings_.push_back(StringLiteral{literal_line, literal});
        } else {
          literal += c;
          code_line += ' ';
        }
        break;
      case State::kRawString: {
        const std::string close = ")" + raw_delim + "\"";
        if (text.compare(i, close.size(), close) == 0) {
          state = State::kCode;
          code_line += close;
          raw_line += text.substr(i + 1, close.size() - 1);
          i += close.size() - 1;
          strings_.push_back(StringLiteral{literal_line, literal});
        } else {
          literal += c;
          code_line += ' ';
        }
        break;
      }
      case State::kChar:
        if (c == '\\' && next != '\0') {
          code_line += "  ";
          raw_line += next;
          ++i;
        } else if (c == '\'') {
          state = State::kCode;
          code_line += '\'';
        } else {
          code_line += ' ';
        }
        break;
    }
  }
  if (!raw_line.empty() || raw_.empty()) flush_line();
}

}  // namespace cslint
