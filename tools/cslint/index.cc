#include "index.h"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace cslint {

namespace {

// Bump when the extraction logic changes: stale cache entries from an
// older extractor must not satisfy lookups.
constexpr const char* kCacheMagic = "cslint-symbol-cache";
constexpr int kExtractorVersion = 3;

// Identifier chains that are never call targets or definition names.
const std::set<std::string> kKeywords = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "alignas", "catch", "decltype", "noexcept", "static_assert",
    "defined", "throw", "else", "case", "goto", "new", "delete",
    "default", "using", "typedef", "template", "typename", "operator",
    "co_return", "co_await", "co_yield", "requires", "explicit",
    "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
    "__has_include", "__attribute__", "asm", "public", "private",
    "protected"};

// `Status Foo(`, `util::Status Bar::Baz(`, `Result<std::vector<T>> Qux(`
// — possibly after static/virtual/etc. specifiers.
const std::regex kStatusDeclRe(
    R"(^\s*(?:(?:static|inline|virtual|constexpr|explicit|friend)\s+)*)"
    R"((?:util::|crowdselect::)?(?:Status|Result<[^;={}]*>)\s+)"
    R"((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");

// Any other declaration-looking line, to find names that ALSO appear with
// a non-Status return type (overloads, unrelated helpers with the same
// name). The return-type part must not itself be Status/Result.
const std::regex kOtherDeclRe(
    R"(^\s*(?:(?:static|inline|virtual|constexpr|explicit|friend)\s+)*)"
    R"((void|bool|int|auto|float|double|size_t|uint\d+_t|int\d+_t|)"
    R"(std::\w[\w:<>,\s*&]*|[A-Z]\w*(?:<[^;={}]*>)?[*&\s]*)\s+)"
    R"((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");

// A std guard construction on one code line. CTAD (`std::shared_lock
// lock(mu_)`) and explicit template arguments both match.
const std::regex kGuardRe(
    R"(std::(lock_guard|unique_lock|shared_lock|scoped_lock)\b)");

// `// cs:lock(class.name)` annotation naming the lockdep class of the
// acquisition on/below the comment.
const std::regex kLockAnnotationRe(R"(cs:lock\(([A-Za-z0-9_.]+)\))");

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

// The extractor works over the code view flattened to one string, with
// an offset -> 1-based line mapping.
struct FlatText {
  std::string text;
  std::vector<size_t> line_starts;  // line_starts[i] = offset of line i+1.

  int LineOf(size_t offset) const {
    auto it = std::upper_bound(line_starts.begin(), line_starts.end(),
                               offset);
    return static_cast<int>(it - line_starts.begin());
  }
};

FlatText Flatten(const SourceFile& file) {
  FlatText flat;
  for (const std::string& line : file.code()) {
    flat.line_starts.push_back(flat.text.size());
    flat.text += line;
    flat.text += '\n';
  }
  return flat;
}

// Reads a qualified identifier chain at `i`: `ident(::ident)*`, with an
// optional '~' on the last component. Returns the components and leaves
// `i` one past the chain; returns empty when `i` is not a chain start.
std::vector<std::string> ReadChain(const std::string& text, size_t* i) {
  std::vector<std::string> parts;
  size_t p = *i;
  for (;;) {
    std::string part;
    if (p < text.size() && text[p] == '~') {
      part += '~';
      ++p;
    }
    if (p >= text.size() || !IsIdentStart(text[p])) break;
    while (p < text.size() && IsIdentChar(text[p])) part += text[p++];
    parts.push_back(part);
    if (p + 1 < text.size() && text[p] == ':' && text[p + 1] == ':' &&
        (p + 2 < text.size() &&
         (IsIdentStart(text[p + 2]) || text[p + 2] == '~'))) {
      p += 2;
      continue;
    }
    break;
  }
  if (!parts.empty()) *i = p;
  return parts;
}

size_t SkipWs(const std::string& text, size_t i) {
  while (i < text.size() &&
         std::isspace(static_cast<unsigned char>(text[i]))) {
    ++i;
  }
  return i;
}

// Attempts to skip balanced template arguments starting at '<'. Bails
// (returns the start) on statement punctuation or a long span, so a
// less-than comparison is almost never mistaken for template args.
size_t SkipAngles(const std::string& text, size_t i) {
  if (i >= text.size() || text[i] != '<') return i;
  int depth = 0;
  size_t p = i;
  const size_t limit = std::min(text.size(), i + 400);
  for (; p < limit; ++p) {
    const char c = text[p];
    if (c == '<') ++depth;
    if (c == '>' && --depth == 0) return p + 1;
    if (c == ';' || c == '{' || c == '}') return i;
  }
  return i;
}

// Skips a balanced (...) group starting at '('. Returns npos when the
// file ends first.
size_t SkipParens(const std::string& text, size_t i) {
  int depth = 0;
  for (size_t p = i; p < text.size(); ++p) {
    if (text[p] == '(') ++depth;
    if (text[p] == ')' && --depth == 0) return p + 1;
  }
  return std::string::npos;
}

size_t SkipBraces(const std::string& text, size_t i) {
  int depth = 0;
  for (size_t p = i; p < text.size(); ++p) {
    if (text[p] == '{') ++depth;
    if (text[p] == '}' && --depth == 0) return p + 1;
  }
  return std::string::npos;
}

// After a candidate header's closing ')', decides whether a definition
// body follows. Consumes trailing specifiers (const, noexcept(...),
// override, &, ->Type) and a constructor initializer list. Returns the
// offset of the body's '{', or npos when this is not a definition.
size_t FindBodyBrace(const std::string& text, size_t i) {
  size_t p = i;
  for (;;) {
    p = SkipWs(text, p);
    if (p >= text.size()) return std::string::npos;
    const char c = text[p];
    if (c == '{') return p;
    if (c == ';' || c == '=' || c == ',' || c == ')' || c == '(') {
      return std::string::npos;
    }
    if (c == ':') {
      // Constructor initializer list: ident(...) or ident{...} groups
      // separated by commas, then the body brace.
      ++p;
      for (;;) {
        p = SkipWs(text, p);
        std::vector<std::string> chain = ReadChain(text, &p);
        if (chain.empty()) return std::string::npos;
        p = SkipAngles(text, SkipWs(text, p));
        p = SkipWs(text, p);
        if (p >= text.size()) return std::string::npos;
        if (text[p] == '(') {
          p = SkipParens(text, p);
        } else if (text[p] == '{') {
          p = SkipBraces(text, p);
        } else {
          return std::string::npos;
        }
        if (p == std::string::npos) return std::string::npos;
        p = SkipWs(text, p);
        if (p < text.size() && text[p] == ',') {
          ++p;
          continue;
        }
        if (p < text.size() && text[p] == '{') return p;
        return std::string::npos;
      }
    }
    if (c == '-' && p + 1 < text.size() && text[p + 1] == '>') {
      // Trailing return type: consume tokens until '{' or ';'.
      p += 2;
      while (p < text.size() && text[p] != '{' && text[p] != ';' &&
             text[p] != '}') {
        ++p;
      }
      continue;
    }
    if (c == '&') {
      ++p;
      continue;
    }
    if (IsIdentStart(c)) {
      std::vector<std::string> chain = ReadChain(text, &p);
      const std::string& word = chain.back();
      if (word == "const" || word == "noexcept" || word == "override" ||
          word == "final" || word == "mutable" || word == "try") {
        // noexcept(...) may carry an argument.
        const size_t q = SkipWs(text, p);
        if (word == "noexcept" && q < text.size() && text[q] == '(') {
          p = SkipParens(text, q);
          if (p == std::string::npos) return std::string::npos;
        }
        continue;
      }
      return std::string::npos;
    }
    return std::string::npos;
  }
}

}  // namespace

uint64_t HashFileBytes(const std::string& path, bool* ok) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    if (ok != nullptr) *ok = false;
    return 0;
  }
  if (ok != nullptr) *ok = true;
  uint64_t h = 1469598103934665603ull;  // FNV-1a 64 offset basis.
  char buf[1 << 16];
  while (in.read(buf, sizeof(buf)) || in.gcount() > 0) {
    const std::streamsize n = in.gcount();
    for (std::streamsize i = 0; i < n; ++i) {
      h ^= static_cast<unsigned char>(buf[i]);
      h *= 1099511628211ull;
    }
    if (n < static_cast<std::streamsize>(sizeof(buf))) break;
  }
  return h;
}

FileSymbols ExtractSymbols(const SourceFile& file) {
  FileSymbols out;

  // Status/Result declaration names for the discarded-status rule.
  for (const std::string& line : file.code()) {
    std::smatch m;
    if (std::regex_search(line, m, kStatusDeclRe)) {
      out.status_decls.push_back(m[1].str());
    } else if (std::regex_search(line, m, kOtherDeclRe)) {
      const std::string type = Trim(m[1].str());
      if (type != "return" && type != "else" && type != "new" &&
          type != "delete" && type != "co_return") {
        out.other_decls.push_back(m[2].str());
      }
    }
  }

  const FlatText flat = Flatten(file);
  const std::string& text = flat.text;
  const size_t n = text.size();

  // Brace depth at the start of every line, for guard-scope extents.
  std::vector<int> depth_at_line(file.code().size() + 2, 0);
  {
    int d = 0;
    for (size_t i = 0, line = 0; i < n; ++i) {
      if (text[i] == '{') ++d;
      if (text[i] == '}') --d;
      if (text[i] == '\n') depth_at_line[++line + 1] = d;  // 1-based.
    }
  }
  // First line after `line` whose start depth drops below the depth at
  // the start of `line` — i.e. where the enclosing block has closed.
  auto scope_end_line = [&](int line, int fallback) {
    const int d = depth_at_line[line];
    for (size_t l = static_cast<size_t>(line) + 1;
         l < depth_at_line.size(); ++l) {
      if (depth_at_line[l] < d) return static_cast<int>(l) - 1;
    }
    return fallback;
  };

  // The back-window for an annotation ends at the first line that holds
  // code: a comment separated from a definition by another definition
  // (or any statement) does not apply to it.
  auto code_line_empty = [&](int line) -> bool {
    if (line < 1 || line > static_cast<int>(file.code().size())) return true;
    return Trim(file.code()[line - 1]).empty();
  };
  auto comment_has = [&](int line, int back_window,
                         const char* needle) -> bool {
    for (int b = 0; b <= back_window; ++b) {
      if (b > 0 && !code_line_empty(line - b)) return false;
      if (file.CommentAt(line - b).find(needle) != std::string::npos) {
        return true;
      }
    }
    return false;
  };
  auto lock_annotation = [&](int line) -> std::string {
    for (int b = 0; b <= 2; ++b) {
      if (b > 0 && !code_line_empty(line - b)) return "";
      std::smatch m;
      const std::string& comment = file.CommentAt(line - b);
      if (std::regex_search(comment, m, kLockAnnotationRe)) {
        return m[1].str();
      }
    }
    return "";
  };

  // Class/struct context stack: (brace depth of the class body, name).
  std::vector<std::pair<int, std::string>> class_stack;
  std::string pending_class;  // Seen `class X`, waiting for '{' or ';'.

  size_t i = 0;
  int depth = 0;
  while (i < n) {
    const char c = text[i];
    if (c == '{') {
      ++depth;
      if (!pending_class.empty()) {
        class_stack.emplace_back(depth, pending_class);
        pending_class.clear();
      }
      ++i;
      continue;
    }
    if (c == '}') {
      while (!class_stack.empty() && class_stack.back().first >= depth) {
        class_stack.pop_back();
      }
      --depth;
      ++i;
      continue;
    }
    if (c == ';') {
      pending_class.clear();
      ++i;
      continue;
    }
    if (!IsIdentStart(c)) {
      ++i;
      continue;
    }
    // A chain preceded by ident char or '.', '->', 'new' context is not
    // a definition candidate.
    const size_t chain_start = i;
    std::vector<std::string> chain = ReadChain(text, &i);
    if (chain.empty()) {
      ++i;
      continue;
    }
    const std::string& last = chain.back();
    if (last == "class" || last == "struct") {
      const size_t save = i;
      size_t p = SkipWs(text, i);
      std::vector<std::string> name = ReadChain(text, &p);
      if (!name.empty()) {
        // `class X;` / `class X : Base {` / template args all funnel
        // through pending_class; ';' clears it.
        pending_class = name.back();
        i = p;
      } else {
        i = save;
      }
      continue;
    }
    if (kKeywords.count(last) != 0) continue;
    size_t after = SkipWs(text, i);
    after = SkipAngles(text, after);
    after = SkipWs(text, after);
    if (after >= n || text[after] != '(') continue;

    // Candidate definition header. Check what follows the parameter
    // list; a body brace makes it a definition.
    const size_t close = SkipParens(text, after);
    if (close == std::string::npos) {
      i = after + 1;
      continue;
    }
    const size_t body = FindBodyBrace(text, close);
    if (body == std::string::npos) {
      i = after + 1;
      continue;
    }
    const size_t body_end = SkipBraces(text, body);
    if (body_end == std::string::npos) {
      i = after + 1;
      continue;
    }

    FunctionInfo fn;
    fn.name = last;
    if (chain.size() > 1) {
      fn.qualifier = chain[chain.size() - 2];
    } else if (!class_stack.empty()) {
      fn.qualifier = class_stack.back().second;
    }
    if (!fn.name.empty() && fn.name[0] == '~') fn.name = fn.name.substr(1);
    fn.line = flat.LineOf(chain_start);
    fn.end_line = flat.LineOf(body_end - 1);
    fn.signal_safe = comment_has(fn.line, 3, "cs:signal-safe");

    // Scan the body (and nothing before it: constructor initializer
    // lists stay out, so member initializers do not read as calls) for
    // call sites, new/delete, and raw lock calls.
    size_t p = body;
    std::string prev_chain_text;  // Last chain seen, for obj.lock().
    while (p < body_end) {
      const char bc = text[p];
      if (!IsIdentStart(bc)) {
        ++p;
        continue;
      }
      const bool member_access =
          (p >= 1 && text[p - 1] == '.') ||
          (p >= 2 && text[p - 2] == '-' && text[p - 1] == '>');
      // `Type name(args)` is a declaration, not a call: skip chains
      // whose previous token is another identifier (that is not a
      // statement keyword), a template-args '>', or a '*'/'&' from a
      // declarator. Member accesses are never declarations.
      bool declaration_position = false;
      if (!member_access) {
        size_t prev = p;
        while (prev > body &&
               std::isspace(static_cast<unsigned char>(text[prev - 1]))) {
          --prev;
        }
        if (prev > body) {
          const char pc = text[prev - 1];
          if (pc == '>' || pc == '*' || pc == '&') {
            declaration_position = true;
          } else if (IsIdentChar(pc)) {
            size_t ws = prev;
            while (ws > body && IsIdentChar(text[ws - 1])) --ws;
            const std::string prev_word = text.substr(ws, prev - ws);
            declaration_position =
                kKeywords.count(prev_word) == 0 && prev_word != "do";
          }
        }
      }
      const size_t call_start = p;
      std::vector<std::string> cchain = ReadChain(text, &p);
      if (cchain.empty()) {
        ++p;
        continue;
      }
      if (declaration_position && cchain.size() == 1) continue;
      const std::string& cname = cchain.back();
      if (cname == "new" || cname == "delete") {
        CallSite site;
        site.name = cname == "new" ? "::new" : "::delete";
        site.line = flat.LineOf(call_start);
        fn.calls.push_back(site);
        continue;
      }
      if (kKeywords.count(cname) != 0) continue;
      size_t q = SkipWs(text, p);
      q = SkipAngles(text, q);
      q = SkipWs(text, q);
      if (q >= n || text[q] != '(') {
        prev_chain_text = cname;
        continue;
      }
      const int call_line = flat.LineOf(call_start);
      if (member_access &&
          (cname == "lock" || cname == "lock_shared" ||
           cname == "try_lock" || cname == "try_lock_shared")) {
        // Raw acquisition (`first_->lock()`), unless it is a guard
        // object being re-locked.
        if (prev_chain_text.rfind("lock", 0) != 0 &&
            prev_chain_text.rfind("guard", 0) != 0) {
          LockSite site;
          site.lock_class = lock_annotation(call_line);
          site.line = call_line;
          site.scope_end = fn.end_line;
          site.shared = cname.find("shared") != std::string::npos;
          site.raw_call = true;
          fn.locks.push_back(site);
        }
        p = q + 1;
        continue;
      }
      CallSite site;
      site.name = cname;
      if (cchain.size() > 1) site.qualifier = cchain[cchain.size() - 2];
      site.line = call_line;
      site.member = member_access;
      fn.calls.push_back(site);
      prev_chain_text = cname;
      p = q + 1;
    }

    // Guard constructions are matched per line over the body's extent:
    // CTAD hides the mutex type, so the site regex alone decides.
    for (int line = fn.line; line <= fn.end_line &&
                             line <= static_cast<int>(file.code().size());
         ++line) {
      if (line < flat.LineOf(body)) continue;
      const std::string& code_line = file.code()[line - 1];
      std::smatch m;
      if (!std::regex_search(code_line, m, kGuardRe)) continue;
      LockSite site;
      site.lock_class = lock_annotation(line);
      site.line = line;
      site.scope_end = std::min(scope_end_line(line, fn.end_line),
                                fn.end_line);
      site.shared = m[1].str() == "shared_lock";
      fn.locks.push_back(site);
    }
    std::sort(fn.locks.begin(), fn.locks.end(),
              [](const LockSite& a, const LockSite& b) {
                return a.line < b.line;
              });

    out.functions.push_back(std::move(fn));
    i = body_end;
  }
  return out;
}

// ---------------------------------------------------------------------------
// Cache serialization.

void SymbolCache::Load(const std::string& path) {
  entries_.clear();
  std::ifstream in(path);
  if (!in) return;
  std::string line;
  if (!std::getline(in, line)) return;
  std::istringstream header(line);
  std::string magic;
  int version = 0;
  header >> magic >> version;
  if (magic != kCacheMagic || version != kExtractorVersion) return;

  std::string current_path;
  CachedFile current;
  FunctionInfo* fn = nullptr;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string tag;
    ls >> tag;
    if (tag == "file") {
      current_path.clear();
      current = CachedFile();
      fn = nullptr;
      ls >> current_path >> std::hex >> current.content_hash >> std::dec;
    } else if (tag == "fn") {
      FunctionInfo f;
      std::string qual;
      int safe = 0;
      ls >> f.name >> qual >> f.line >> f.end_line >> safe;
      f.qualifier = qual == "-" ? "" : qual;
      f.signal_safe = safe != 0;
      current.symbols.functions.push_back(std::move(f));
      fn = &current.symbols.functions.back();
    } else if (tag == "call" && fn != nullptr) {
      CallSite s;
      std::string qual;
      int member = 0;
      ls >> s.name >> qual >> s.line >> member;
      s.qualifier = qual == "-" ? "" : qual;
      s.member = member != 0;
      fn->calls.push_back(std::move(s));
    } else if (tag == "lock" && fn != nullptr) {
      LockSite s;
      std::string cls;
      int shared = 0, raw = 0;
      ls >> cls >> s.line >> s.scope_end >> shared >> raw;
      s.lock_class = cls == "-" ? "" : cls;
      s.shared = shared != 0;
      s.raw_call = raw != 0;
      fn->locks.push_back(std::move(s));
    } else if (tag == "sdecl") {
      std::string name;
      ls >> name;
      current.symbols.status_decls.push_back(name);
    } else if (tag == "odecl") {
      std::string name;
      ls >> name;
      current.symbols.other_decls.push_back(name);
    } else if (tag == "end") {
      if (!current_path.empty()) entries_[current_path] = current;
      current_path.clear();
      fn = nullptr;
    }
  }
}

bool SymbolCache::Save(const std::string& path) const {
  std::ostringstream out;
  out << kCacheMagic << ' ' << kExtractorVersion << '\n';
  for (const auto& [rel, entry] : entries_) {
    out << "file " << rel << ' ' << std::hex << entry.content_hash
        << std::dec << '\n';
    for (const FunctionInfo& f : entry.symbols.functions) {
      out << "fn " << f.name << ' '
          << (f.qualifier.empty() ? "-" : f.qualifier) << ' ' << f.line
          << ' ' << f.end_line << ' ' << (f.signal_safe ? 1 : 0) << '\n';
      for (const CallSite& s : f.calls) {
        out << "call " << s.name << ' '
            << (s.qualifier.empty() ? "-" : s.qualifier) << ' ' << s.line
            << ' ' << (s.member ? 1 : 0) << '\n';
      }
      for (const LockSite& s : f.locks) {
        out << "lock " << (s.lock_class.empty() ? "-" : s.lock_class)
            << ' ' << s.line << ' ' << s.scope_end << ' '
            << (s.shared ? 1 : 0) << ' ' << (s.raw_call ? 1 : 0) << '\n';
      }
    }
    for (const std::string& name : entry.symbols.status_decls) {
      out << "sdecl " << name << '\n';
    }
    for (const std::string& name : entry.symbols.other_decls) {
      out << "odecl " << name << '\n';
    }
    out << "end\n";
  }
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f << out.str();
  return static_cast<bool>(f);
}

const FileSymbols* SymbolCache::Lookup(const std::string& rel_path,
                                       uint64_t content_hash) const {
  auto it = entries_.find(rel_path);
  if (it == entries_.end() || it->second.content_hash != content_hash) {
    ++misses_;
    return nullptr;
  }
  ++hits_;
  return &it->second.symbols;
}

void SymbolCache::Put(const std::string& rel_path, uint64_t content_hash,
                      const FileSymbols& symbols) {
  entries_[rel_path] = CachedFile{content_hash, symbols};
}

void SymbolCache::Prune(const std::vector<std::string>& live_paths) {
  const std::set<std::string> live(live_paths.begin(), live_paths.end());
  for (auto it = entries_.begin(); it != entries_.end();) {
    it = live.count(it->first) ? std::next(it) : entries_.erase(it);
  }
}

}  // namespace cslint
