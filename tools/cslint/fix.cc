#include "fix.h"

#include <set>
#include <sstream>

namespace cslint {

std::string RemoveSuppressions(const std::string& text,
                               const std::vector<AllowSite>& sites) {
  std::set<int> lines;
  for (const AllowSite& site : sites) lines.insert(site.line);

  std::vector<std::string> out;
  std::istringstream in(text);
  std::string line;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (lines.count(line_no) == 0) {
      out.push_back(line);
      continue;
    }
    // The marker comment starts at the `//` whose text begins with
    // "cslint:" — any reason text after the marker goes with it.
    size_t comment = std::string::npos;
    for (size_t pos = line.find("//"); pos != std::string::npos;
         pos = line.find("//", pos + 2)) {
      size_t word = pos + 2;
      while (word < line.size() && (line[word] == ' ' || line[word] == '\t')) {
        ++word;
      }
      if (line.compare(word, 7, "cslint:") == 0) {
        comment = pos;
        break;
      }
    }
    if (comment == std::string::npos) {
      out.push_back(line);  // Lexer/caller disagree; leave it alone.
      continue;
    }
    std::string kept = line.substr(0, comment);
    const size_t end = kept.find_last_not_of(" \t");
    if (end == std::string::npos) continue;  // Marker-only line: drop it.
    out.push_back(kept.substr(0, end + 1));
  }

  std::string joined;
  for (const std::string& l : out) {
    joined += l;
    joined += '\n';
  }
  // Preserve a missing trailing newline.
  if (!text.empty() && text.back() != '\n' && !joined.empty()) {
    joined.pop_back();
  }
  return joined;
}

}  // namespace cslint
