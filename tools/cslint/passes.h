// Phase 2 of cslint v2: rule passes over the project call graph.
//
//   signal-safety     functions annotated `// cs:signal-safe` may only
//                     reach the POSIX async-signal-safe allowlist or
//                     other annotated functions; violations print the
//                     annotated call chain from the handler root.
//   lock-order        lock acquisitions in src/obs, src/crowddb and
//                     src/serve must carry a `// cs:lock(class)`
//                     annotation naming their lockdep class; classes
//                     are ranked by the `cs:lock-rank` table in
//                     docs/static_analysis.md and acquisitions while a
//                     lock is held — directly or through calls — must
//                     strictly increase in rank.
//   fp-determinism    translation units under src/serve/kernels/ may
//                     not call std::fma, FMA intrinsics, or
//                     math-library functions outside a small
//                     deterministic allowlist (see docs/kernels.md).
//   stale-suppression a `// cslint: allow(<rule>)` that suppressed
//                     nothing in this run is itself an error.
#ifndef CROWDSELECT_TOOLS_CSLINT_PASSES_H_
#define CROWDSELECT_TOOLS_CSLINT_PASSES_H_

#include <map>
#include <string>
#include <vector>

#include "callgraph.h"
#include "rules.h"
#include "source_file.h"

namespace cslint {

/// One `cs:lock-rank <class> <rank> [leaf]` entry. A leaf class may not
/// hold any tracked lock while it is held.
struct LockRank {
  int rank = 0;
  bool leaf = false;
};
using LockRankTable = std::map<std::string, LockRank>;

/// Parses `cs:lock-rank` lines out of docs/static_analysis.md text.
LockRankTable ParseLockRanks(const std::string& docs_text);

/// Shared inputs for the graph passes. `files` maps repo-relative paths
/// to their lexed sources (for suppression lookups); entries referenced
/// by the graph must be present.
struct PassContext {
  const CallGraph* graph = nullptr;
  const std::map<std::string, SourceFile>* files = nullptr;
  LockRankTable ranks;
};

void CheckSignalSafety(const PassContext& ctx,
                       std::vector<Finding>* findings);

void CheckLockOrder(const PassContext& ctx, std::vector<Finding>* findings);

void CheckFpDeterminism(const PassContext& ctx,
                        std::vector<Finding>* findings);

/// Must run after every other pass (line rules included), since a
/// suppression is stale only if no pass consumed it.
void CheckStaleSuppressions(const std::map<std::string, SourceFile>& files,
                            std::vector<Finding>* findings);

/// True when `rel_path` is inside a directory the lock-order pass
/// covers (src/obs, src/crowddb, src/serve).
bool InLockOrderScope(const std::string& rel_path);

/// True when `rel_path` is a kernel translation unit subject to the
/// fp-determinism pass.
bool IsKernelTu(const std::string& rel_path);

}  // namespace cslint

#endif  // CROWDSELECT_TOOLS_CSLINT_PASSES_H_
