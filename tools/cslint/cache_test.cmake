# Incremental-cache contract: run cslint twice over the same tree with
# --cache. The first run extracts every file cold; the second must serve
# every file from the cache and produce byte-identical findings.
#
# Inputs: CSLINT (binary), TREE (fixture root), WORK_DIR (scratch).
file(REMOVE_RECURSE ${WORK_DIR})
file(MAKE_DIRECTORY ${WORK_DIR})

execute_process(
  COMMAND ${CSLINT} --cache=${WORK_DIR}/symbols.cache ${TREE}
  OUTPUT_VARIABLE out1 ERROR_VARIABLE err1 RESULT_VARIABLE rc1)
if(NOT err1 MATCHES "cache: 0 hit")
  message(FATAL_ERROR "first run should start cold, got: ${err1}")
endif()
if(NOT EXISTS ${WORK_DIR}/symbols.cache)
  message(FATAL_ERROR "cache file was not written")
endif()

execute_process(
  COMMAND ${CSLINT} --cache=${WORK_DIR}/symbols.cache ${TREE}
  OUTPUT_VARIABLE out2 ERROR_VARIABLE err2 RESULT_VARIABLE rc2)
if(NOT err2 MATCHES ", 0 extracted")
  message(FATAL_ERROR "second run should be fully cached, got: ${err2}")
endif()
if(NOT out1 STREQUAL out2)
  message(FATAL_ERROR
    "cached run changed findings:\n--- cold ---\n${out1}\n--- warm ---\n${out2}")
endif()

# Invalidation: touching a file's bytes must force re-extraction of that
# file (and only that file) on the next run. The fixture lives in the
# source tree, so copy it into WORK_DIR before modifying.
file(GLOB_RECURSE tree_sources ${TREE}/src/*.cc)
list(GET tree_sources 0 victim)
get_filename_component(victim_name ${victim} NAME)
file(COPY ${TREE}/ DESTINATION ${WORK_DIR}/tree)

execute_process(
  COMMAND ${CSLINT} --cache=${WORK_DIR}/tree.cache ${WORK_DIR}/tree
  ERROR_VARIABLE err3 RESULT_VARIABLE rc3)
execute_process(
  COMMAND ${CSLINT} --cache=${WORK_DIR}/tree.cache ${WORK_DIR}/tree
  ERROR_VARIABLE err4 RESULT_VARIABLE rc4)
if(NOT err4 MATCHES ", 0 extracted")
  message(FATAL_ERROR "copied tree should be cached on rerun: ${err4}")
endif()
file(APPEND ${WORK_DIR}/tree/src/${victim_name} "\n// touched again\n")
execute_process(
  COMMAND ${CSLINT} --cache=${WORK_DIR}/tree.cache ${WORK_DIR}/tree
  ERROR_VARIABLE err5 RESULT_VARIABLE rc5)
if(NOT err5 MATCHES ", 1 extracted")
  message(FATAL_ERROR "touched file should re-extract exactly once: ${err5}")
endif()
