#include "callgraph.h"

namespace cslint {

CallGraph CallGraph::Build(
    const std::map<std::string, FileSymbols>& files) {
  CallGraph g;
  for (const auto& [path, symbols] : files) {
    for (const FunctionInfo& fn : symbols.functions) {
      const int id = static_cast<int>(g.nodes_.size());
      g.nodes_.push_back(GraphNode{path, fn, {}});
      g.by_name_.emplace(fn.name, id);
      if (!fn.qualifier.empty()) {
        g.by_qualified_.emplace(fn.qualifier + "::" + fn.name, id);
      }
    }
  }
  for (GraphNode& node : g.nodes_) {
    node.callees.reserve(node.fn.calls.size());
    for (const CallSite& call : node.fn.calls) {
      node.callees.push_back(g.Resolve(call));
    }
  }
  return g;
}

std::vector<int> CallGraph::Resolve(const CallSite& call) const {
  std::vector<int> ids;
  if (!call.qualifier.empty()) {
    const std::string key = call.qualifier + "::" + call.name;
    for (auto [it, end] = by_qualified_.equal_range(key); it != end; ++it) {
      ids.push_back(it->second);
    }
    if (!ids.empty()) return ids;
    // Qualified but no definition under that qualifier: the qualifier
    // may be a namespace alias or base class — fall back to name match.
  }
  ids = FindByName(call.name);
  if (call.member) {
    // A member call cannot target a free function, and a generic method
    // name (`size`, `Record`) defined by several unrelated classes
    // cannot be attributed without type information — linking to all of
    // them floods downstream passes, so such calls stay unresolved.
    std::vector<int> methods;
    std::string qualifier;
    for (int id : ids) {
      const std::string& q = nodes_[id].fn.qualifier;
      if (q.empty()) continue;
      if (!methods.empty() && q != qualifier) return {};
      qualifier = q;
      methods.push_back(id);
    }
    return methods;
  }
  return ids;
}

std::vector<int> CallGraph::FindByName(const std::string& name) const {
  std::vector<int> ids;
  for (auto [it, end] = by_name_.equal_range(name); it != end; ++it) {
    ids.push_back(it->second);
  }
  return ids;
}

std::string CallGraph::Display(int id) const {
  const GraphNode& n = nodes_[id];
  if (n.fn.qualifier.empty()) return n.fn.name;
  return n.fn.qualifier + "::" + n.fn.name;
}

}  // namespace cslint
