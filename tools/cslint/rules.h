// The cslint rules. Each rule appends Findings; main.cc aggregates and
// sets the exit code. Rules and their suppression names:
//
//   discarded-status    calling a Status/Result-returning function as a
//                       bare statement, or a `(void)` cast of one without
//                       a justifying comment nearby
//   naked-new           `new` / `delete` outside src/util/ that is not a
//                       smart-pointer adoption
//   lock-in-loop        acquiring a mutex inside a loop without a
//                       "lock-order" comment documenting the ordering
//   unregistered-metric metric/span name literal (storage.*, serve.*,
//                       crowd.*, select.*) absent from
//                       docs/metrics_registry.txt
//   include-guard       header guard not derived from the file path
//
// Suppress any rule at a site with `// cslint: allow(<rule>)` on the
// same line or the line above. See docs/static_analysis.md.
#ifndef CROWDSELECT_TOOLS_CSLINT_RULES_H_
#define CROWDSELECT_TOOLS_CSLINT_RULES_H_

#include <set>
#include <string>
#include <vector>

#include "index.h"
#include "source_file.h"

namespace cslint {

struct Finding {
  std::string path;
  int line = 0;
  std::string rule;
  std::string message;
};

/// Function names declared (anywhere in the project) as returning
/// util::Status or util::Result<T>, minus names that are also declared
/// with some other return type — those are ambiguous and skipped rather
/// than risking false positives.
struct StatusFunctionIndex {
  std::set<std::string> status_returning;

  /// Accumulates the declaration names phase 1 extracted from one file.
  void Collect(const FileSymbols& symbols);
  /// Call once after every file has been Collect()ed.
  void Finalize();

 private:
  std::set<std::string> other_returning_;
};

void CheckDiscardedStatus(const SourceFile& file,
                          const StatusFunctionIndex& index,
                          std::vector<Finding>* findings);

/// `repo_relative` is the path relative to the repository root, used to
/// exempt src/util/.
void CheckNakedNew(const SourceFile& file, const std::string& repo_relative,
                   std::vector<Finding>* findings);

void CheckLockInLoop(const SourceFile& file, std::vector<Finding>* findings);

/// `registry` holds the entries of docs/metrics_registry.txt; entries
/// ending in '*' are prefix wildcards.
void CheckMetricNames(const SourceFile& file,
                      const std::vector<std::string>& registry,
                      std::vector<Finding>* findings);

void CheckIncludeGuard(const SourceFile& file,
                       const std::string& repo_relative,
                       std::vector<Finding>* findings);

}  // namespace cslint

#endif  // CROWDSELECT_TOOLS_CSLINT_RULES_H_
