// Phase 2 substrate: the project-wide call graph.
//
// BuildCallGraph() links every FunctionInfo from every translation unit
// into one graph. Call sites resolve by name with qualifier awareness:
// a call written `FlightRecorder::Global()` only links to definitions
// whose qualifier is FlightRecorder; an unqualified call links to every
// definition of that name (the analysis is conservative — when several
// functions share a name, a path through any of them counts).
#ifndef CROWDSELECT_TOOLS_CSLINT_CALLGRAPH_H_
#define CROWDSELECT_TOOLS_CSLINT_CALLGRAPH_H_

#include <map>
#include <string>
#include <vector>

#include "index.h"

namespace cslint {

/// One function definition, located in its file.
struct GraphNode {
  std::string file;  // Repo-relative path.
  FunctionInfo fn;
  // Resolved callees: parallel to fn.calls, each entry the node ids the
  // call site may target (empty = external/unresolved).
  std::vector<std::vector<int>> callees;
};

class CallGraph {
 public:
  /// Links the symbols of all files into one graph.
  static CallGraph Build(
      const std::map<std::string, FileSymbols>& files);

  const std::vector<GraphNode>& nodes() const { return nodes_; }
  const GraphNode& node(int id) const { return nodes_[id]; }

  /// Node ids a call site may target. Resolution order: exact
  /// (qualifier, name) match when the site is qualified and any such
  /// definition exists; otherwise every definition of `name`.
  std::vector<int> Resolve(const CallSite& call) const;

  /// Ids of every definition named `name` (any qualifier).
  std::vector<int> FindByName(const std::string& name) const;

  /// "Qualifier::Name" (or plain name) for diagnostics.
  std::string Display(int id) const;

 private:
  std::vector<GraphNode> nodes_;
  std::multimap<std::string, int> by_name_;
  std::multimap<std::string, int> by_qualified_;  // "Q::name" -> id.
};

}  // namespace cslint

#endif  // CROWDSELECT_TOOLS_CSLINT_CALLGRAPH_H_
