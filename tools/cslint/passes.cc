#include "passes.h"

#include <algorithm>
#include <deque>
#include <regex>
#include <set>
#include <sstream>

namespace cslint {

namespace {

void Add(std::vector<Finding>* findings, const SourceFile& file, int line,
         const std::string& rule, const std::string& message) {
  if (file.IsAllowed(line, rule)) return;
  findings->push_back(Finding{file.path(), line, rule, message});
}

const SourceFile& FileOf(const PassContext& ctx, const std::string& rel) {
  return ctx.files->at(rel);
}

// POSIX async-signal-safe functions (signal-safety(7)) plus the
// std::atomic member functions, char-buffer helpers and value utilities
// the handler-side formatting code is built from. Everything here is
// reentrant and allocation-free.
const std::set<std::string> kSignalSafeAllow = {
    // signal-safety(7).
    "write", "read", "open", "close", "fsync", "fdatasync", "_exit",
    "_Exit", "abort", "raise", "kill", "sigaction", "sigemptyset",
    "sigfillset", "sigaddset", "sigdelset", "sigprocmask", "signal",
    "getpid", "gettid", "getppid", "time", "clock_gettime", "unlink",
    "rename", "dup", "dup2", "lseek", "umask", "alarm", "pause",
    // String/memory primitives (MT-Safe, no malloc).
    "memcpy", "memmove", "memset", "memcmp", "strlen", "strcmp",
    "strncmp", "strchr", "strrchr", "strnlen",
    // std::atomic members.
    "load", "store", "exchange", "fetch_add", "fetch_sub", "fetch_or",
    "fetch_and", "compare_exchange_strong", "compare_exchange_weak",
    // Value utilities that compile to register moves/compares.
    "min", "max", "move", "forward", "data", "size", "c_str", "begin",
    "end", "empty", "count",
};

// ---------------------------------------------------------------------------
// signal-safety

// Reconstructs the annotated call chain root -> ... -> `target` using
// the annotated-only caller edges, for the diagnostic.
std::string AnnotatedChain(const CallGraph& g,
                           const std::map<int, int>& annotated_caller,
                           int target) {
  std::vector<std::string> chain;
  std::set<int> seen;
  int cur = target;
  while (seen.insert(cur).second) {
    chain.push_back(g.Display(cur));
    auto it = annotated_caller.find(cur);
    if (it == annotated_caller.end()) break;
    cur = it->second;
  }
  std::reverse(chain.begin(), chain.end());
  std::string out;
  for (size_t i = 0; i < chain.size(); ++i) {
    if (i != 0) out += " -> ";
    out += chain[i];
  }
  return out;
}

}  // namespace

void CheckSignalSafety(const PassContext& ctx,
                       std::vector<Finding>* findings) {
  const CallGraph& g = *ctx.graph;

  // One representative annotated caller per annotated node, for chain
  // reconstruction in diagnostics.
  std::map<int, int> annotated_caller;
  for (int id = 0; id < static_cast<int>(g.nodes().size()); ++id) {
    const GraphNode& node = g.node(id);
    if (!node.fn.signal_safe) continue;
    for (const std::vector<int>& targets : node.callees) {
      for (int t : targets) {
        if (g.node(t).fn.signal_safe && t != id) {
          annotated_caller.emplace(t, id);
        }
      }
    }
  }

  std::set<std::string> reported;  // file:line:name dedup.
  for (int id = 0; id < static_cast<int>(g.nodes().size()); ++id) {
    const GraphNode& node = g.node(id);
    if (!node.fn.signal_safe) continue;
    const SourceFile& file = FileOf(ctx, node.file);
    const std::string chain = AnnotatedChain(g, annotated_caller, id);
    for (size_t c = 0; c < node.fn.calls.size(); ++c) {
      const CallSite& call = node.fn.calls[c];
      const std::vector<int>& targets = node.callees[c];
      std::string problem;
      if (call.name == "::new" || call.name == "::delete") {
        problem = std::string(call.name == "::new" ? "operator new"
                                                   : "operator delete") +
                  " allocates";
      } else if (kSignalSafeAllow.count(call.name) != 0) {
        // Allowlisted names win even when a project symbol happens to
        // share the name (`.store()` on an atomic vs. an accessor named
        // `store`): the resolver has no type information, and these
        // names are allowlisted precisely because of that.
        continue;
      } else if (!targets.empty()) {
        // A project-defined callee: fine if any resolved definition is
        // itself annotated (it gets checked on its own).
        bool any_safe = false;
        for (int t : targets) {
          if (g.node(t).fn.signal_safe) {
            any_safe = true;
            break;
          }
        }
        if (!any_safe) {
          problem = "reaches " + g.Display(targets[0]) + " (" +
                    g.node(targets[0]).file +
                    ") which is not marked cs:signal-safe";
        }
      } else if (kSignalSafeAllow.count(call.name) == 0) {
        problem = call.name + "() is not on the async-signal-safe allowlist";
      }
      if (problem.empty()) continue;
      const std::string key =
          node.file + ":" + std::to_string(call.line) + ":" + call.name;
      if (!reported.insert(key).second) continue;
      Add(findings, file, call.line, "signal-safety",
          "unsafe call in cs:signal-safe function " + g.Display(id) + ": " +
              problem + " [chain: " + chain + "]");
    }
  }
}

// ---------------------------------------------------------------------------
// lock-order

LockRankTable ParseLockRanks(const std::string& docs_text) {
  static const std::regex kRankRe(
      R"(cs:lock-rank\s+([A-Za-z0-9_.]+)\s+(\d+)(\s+leaf)?)");
  LockRankTable table;
  std::istringstream in(docs_text);
  std::string line;
  while (std::getline(in, line)) {
    std::smatch m;
    if (std::regex_search(line, m, kRankRe)) {
      table[m[1].str()] = LockRank{std::stoi(m[2].str()),
                                   m[3].matched};
    }
  }
  return table;
}

bool InLockOrderScope(const std::string& rel_path) {
  return rel_path.rfind("src/obs/", 0) == 0 ||
         rel_path.rfind("src/crowddb/", 0) == 0 ||
         rel_path.rfind("src/serve/", 0) == 0;
}

namespace {

// Finds a call path (as display names) from any of `starts` to a node
// that directly acquires `lock_class`, for the diagnostic.
std::string PathToAcquirer(const CallGraph& g, const std::vector<int>& starts,
                           const std::string& lock_class) {
  std::map<int, int> parent;
  std::deque<int> queue;
  for (int s : starts) {
    if (parent.emplace(s, -1).second) queue.push_back(s);
  }
  while (!queue.empty()) {
    const int id = queue.front();
    queue.pop_front();
    const GraphNode& node = g.node(id);
    for (const LockSite& site : node.fn.locks) {
      if (site.lock_class != lock_class) continue;
      std::vector<std::string> chain;
      for (int cur = id; cur != -1; cur = parent[cur]) {
        chain.push_back(g.Display(cur));
      }
      std::reverse(chain.begin(), chain.end());
      std::string out;
      for (size_t i = 0; i < chain.size(); ++i) {
        if (i != 0) out += " -> ";
        out += chain[i];
      }
      return out;
    }
    for (const std::vector<int>& targets : node.callees) {
      for (int t : targets) {
        if (parent.emplace(t, id).second) queue.push_back(t);
      }
    }
  }
  return "";
}

}  // namespace

void CheckLockOrder(const PassContext& ctx, std::vector<Finding>* findings) {
  const CallGraph& g = *ctx.graph;

  // Transitive closure: every lock class a node may acquire, directly
  // or through any call chain. Fixpoint over the (cyclic) graph.
  const int n = static_cast<int>(g.nodes().size());
  std::vector<std::set<std::string>> acquires(n);
  for (int id = 0; id < n; ++id) {
    for (const LockSite& site : g.node(id).fn.locks) {
      if (!site.lock_class.empty()) acquires[id].insert(site.lock_class);
    }
  }
  for (bool changed = true; changed;) {
    changed = false;
    for (int id = 0; id < n; ++id) {
      for (const std::vector<int>& targets : g.node(id).callees) {
        for (int t : targets) {
          for (const std::string& cls : acquires[t]) {
            if (acquires[id].insert(cls).second) changed = true;
          }
        }
      }
    }
  }

  std::set<std::string> reported;
  auto report = [&](const std::string& rel, int line,
                    const std::string& key_suffix, const std::string& msg) {
    const std::string key = rel + ":" + std::to_string(line) + ":" +
                            key_suffix;
    if (!reported.insert(key).second) return;
    Add(findings, FileOf(ctx, rel), line, "lock-order", msg);
  };

  for (int id = 0; id < n; ++id) {
    const GraphNode& node = g.node(id);
    if (!InLockOrderScope(node.file)) continue;
    const std::vector<LockSite>& locks = node.fn.locks;

    for (const LockSite& site : locks) {
      if (site.lock_class.empty()) {
        report(node.file, site.line, "unannotated",
               "lock acquisition without a // cs:lock(class) annotation; "
               "name its lockdep class (see docs/static_analysis.md)");
      } else if (ctx.ranks.count(site.lock_class) == 0) {
        report(node.file, site.line, "unknown:" + site.lock_class,
               "lock class \"" + site.lock_class +
                   "\" has no cs:lock-rank entry in "
                   "docs/static_analysis.md");
      }
    }

    // Direct nesting inside one function.
    for (size_t a = 0; a < locks.size(); ++a) {
      const LockSite& held = locks[a];
      auto held_rank = ctx.ranks.find(held.lock_class);
      if (held_rank == ctx.ranks.end()) continue;
      for (size_t b = 0; b < locks.size(); ++b) {
        if (a == b) continue;
        const LockSite& inner = locks[b];
        if (inner.line <= held.line || inner.line > held.scope_end) continue;
        auto inner_rank = ctx.ranks.find(inner.lock_class);
        if (inner_rank == ctx.ranks.end()) continue;
        if (held_rank->second.leaf) {
          report(node.file, inner.line, "leaf:" + held.lock_class,
                 "acquires " + inner.lock_class + " while holding leaf "
                 "lock " + held.lock_class);
        } else if (inner_rank->second.rank <= held_rank->second.rank) {
          report(node.file, inner.line,
                 "inv:" + held.lock_class + ":" + inner.lock_class,
                 "rank inversion: acquires " + inner.lock_class + " (rank " +
                     std::to_string(inner_rank->second.rank) +
                     ") while holding " + held.lock_class + " (rank " +
                     std::to_string(held_rank->second.rank) + ")");
        }
      }
    }

    // Nesting through calls: anything a callee may acquire while one of
    // our locks is held must rank strictly above the held lock.
    for (const LockSite& held : locks) {
      auto held_rank = ctx.ranks.find(held.lock_class);
      if (held_rank == ctx.ranks.end()) continue;
      for (size_t c = 0; c < node.fn.calls.size(); ++c) {
        const CallSite& call = node.fn.calls[c];
        if (call.line <= held.line || call.line > held.scope_end) continue;
        const std::vector<int>& targets = node.callees[c];
        std::set<std::string> may_acquire;
        for (int t : targets) {
          may_acquire.insert(acquires[t].begin(), acquires[t].end());
        }
        for (const std::string& cls : may_acquire) {
          auto inner_rank = ctx.ranks.find(cls);
          if (inner_rank == ctx.ranks.end()) continue;
          const bool leaf_violation = held_rank->second.leaf;
          const bool rank_violation =
              inner_rank->second.rank <= held_rank->second.rank;
          if (!leaf_violation && !rank_violation) continue;
          const std::string path = PathToAcquirer(g, targets, cls);
          report(node.file, call.line,
                 "call:" + held.lock_class + ":" + cls,
                 std::string(leaf_violation ? "call while holding leaf lock "
                                            : "rank inversion via call: ") +
                     (leaf_violation
                          ? held.lock_class + " may acquire " + cls
                          : "holds " + held.lock_class + " (rank " +
                                std::to_string(held_rank->second.rank) +
                                "), callee may acquire " + cls + " (rank " +
                                std::to_string(inner_rank->second.rank) +
                                ")") +
                     " [path: " + g.Display(id) + " -> " + path + "]");
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// fp-determinism

bool IsKernelTu(const std::string& rel_path) {
  return rel_path.rfind("src/serve/kernels/", 0) == 0;
}

namespace {

// Contracted multiply-add in any spelling: libm fma, builtins, x86 and
// NEON intrinsics.
bool IsFusedMultiplyAdd(const std::string& name) {
  if (name == "fma" || name == "fmaf" || name == "fmal") return true;
  if (name.rfind("__builtin_fma", 0) == 0) return true;
  static const std::regex kX86FmaRe(
      R"(_mm\d*_(mask[z23]?_)?f?n?m(add|sub))");
  if (std::regex_search(name, kX86FmaRe)) return true;
  if (name.rfind("vfma", 0) == 0 || name.rfind("vfms", 0) == 0 ||
      name.rfind("vmla", 0) == 0 || name.rfind("vmls", 0) == 0) {
    return true;
  }
  return false;
}

// Math-library calls whose results are not guaranteed bitwise identical
// across libms/architectures. sqrt and the rounding family are
// correctly-rounded by IEEE 754 and stay allowed.
const std::set<std::string> kNonDeterministicMath = {
    "sin",   "cos",   "tan",   "asin",  "acos",   "atan",  "atan2",
    "sinh",  "cosh",  "tanh",  "asinh", "acosh",  "atanh", "exp",
    "exp2",  "expm1", "log",   "log2",  "log10",  "log1p", "pow",
    "erf",   "erfc",  "tgamma", "lgamma", "cbrt", "hypot",
};

}  // namespace

void CheckFpDeterminism(const PassContext& ctx,
                        std::vector<Finding>* findings) {
  const CallGraph& g = *ctx.graph;
  for (const GraphNode& node : g.nodes()) {
    if (!IsKernelTu(node.file)) continue;
    const SourceFile& file = FileOf(ctx, node.file);
    for (const CallSite& call : node.fn.calls) {
      if (IsFusedMultiplyAdd(call.name)) {
        Add(findings, file, call.line, "fp-determinism",
            call.name + "() fuses multiply-add; kernels are built with "
            "-ffp-contract=off and must stay bitwise reproducible "
            "(docs/kernels.md)");
      } else if (kNonDeterministicMath.count(call.name) != 0) {
        Add(findings, file, call.line, "fp-determinism",
            call.name + "() is not correctly rounded and varies across "
            "libms; kernels allow only sqrt/abs/min/max/rounding "
            "(docs/kernels.md)");
      }
    }
  }
}

// ---------------------------------------------------------------------------
// stale-suppression

void CheckStaleSuppressions(const std::map<std::string, SourceFile>& files,
                            std::vector<Finding>* findings) {
  for (const auto& [rel, file] : files) {
    for (const AllowSite& site : file.StaleAllowSites()) {
      // Reported unconditionally: a suppression cannot suppress its own
      // staleness.
      findings->push_back(Finding{
          file.path(), site.line, "stale-suppression",
          "// cslint: allow(" + site.rule +
              ") no longer suppresses anything; delete it (or run "
              "cslint --fix=suppressions)"});
    }
  }
}

}  // namespace cslint
