// Lexing front end for cslint: loads a source file and produces the views
// the rules match against, so no rule ever has to re-derive "is this
// inside a comment / string literal".
//
//   * raw      — the file exactly as read, split into lines.
//   * code     — comments removed and string/char literal *contents*
//                blanked (quotes kept), so token regexes cannot match
//                inside either.
//   * comments — per-line `//` comment text, for the annotation grammar
//                (`cs:signal-safe`, `cs:lock(class)`) and suppressions.
//   * strings  — every string literal's content with its line number,
//                for rules about the literals themselves (metric names).
//   * allow    — `// cslint: allow(<rule>)` suppressions; one applies to
//                its own line and the line that follows. Each lookup that
//                actually suppresses a finding is recorded, so the
//                stale-suppression audit can flag the ones that no longer
//                suppress anything.
#ifndef CROWDSELECT_TOOLS_CSLINT_SOURCE_FILE_H_
#define CROWDSELECT_TOOLS_CSLINT_SOURCE_FILE_H_

#include <set>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace cslint {

struct StringLiteral {
  int line = 0;          // 1-based line where the literal opens.
  std::string content;   // Between the quotes, escapes left as written.
};

/// A `// cslint: allow(<rule>)` marker.
struct AllowSite {
  int line = 0;  // 1-based.
  std::string rule;
};

class SourceFile {
 public:
  /// Loads and lexes `path`. Returns false (and leaves the object empty)
  /// when the file cannot be read.
  bool Load(const std::string& path);

  /// Lexes `text` directly (unit tests).
  void LoadFromString(const std::string& path, const std::string& text);

  const std::string& path() const { return path_; }
  const std::vector<std::string>& raw() const { return raw_; }
  const std::vector<std::string>& code() const { return code_; }
  const std::vector<StringLiteral>& strings() const { return strings_; }

  /// `//` comment text lexed on 1-based `line` ("" when none).
  const std::string& CommentAt(int line) const;

  /// True when `rule` is suppressed on 1-based `line` via
  /// `// cslint: allow(<rule>)` on that line or the one before it. A hit is
  /// recorded as a *use* of that suppression.
  bool IsAllowed(int line, const std::string& rule) const;

  /// Every allow() marker in the file, in line order.
  std::vector<AllowSite> AllowSites() const;

  /// Markers never consumed by IsAllowed() across all rule passes. Only
  /// meaningful after every pass has run.
  std::vector<AllowSite> StaleAllowSites() const;

 private:
  void Lex(const std::string& text);

  std::string path_;
  std::vector<std::string> raw_;
  std::vector<std::string> code_;
  std::vector<std::string> comments_;  // Parallel to raw_.
  std::vector<StringLiteral> strings_;
  std::unordered_map<int, std::set<std::string>> allow_;  // By 1-based line.
  // (line, rule) pairs that suppressed at least one finding.
  mutable std::set<std::pair<int, std::string>> used_allow_;
};

}  // namespace cslint

#endif  // CROWDSELECT_TOOLS_CSLINT_SOURCE_FILE_H_
