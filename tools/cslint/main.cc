// cslint — project-specific lint for the crowdselect tree.
//
//   cslint [--cache=FILE] [--report=FILE] [--fix=suppressions] <repo_root>
//
// Two-phase analyzer. Phase 1 walks src/, tools/ and bench/ under
// <repo_root>, lexes every file and extracts its symbols (function
// definitions, call sites, lock acquisitions, annotations); with
// --cache=FILE the extraction is persisted keyed by content hash, so an
// incremental run re-extracts only changed files. Phase 2 links the
// symbols into a project-wide call graph and runs the rule passes: the
// per-line rules from rules.h plus the graph passes from passes.h
// (signal-safety reachability, static lock order, FP-determinism,
// stale-suppression audit).
//
// Prints one line per finding in `path:line: [rule] message` format;
// exits 1 when anything fired, 2 on usage / I/O errors, 0 on a clean
// tree. --report=FILE additionally writes the findings and run summary
// to FILE (the CI artifact). --fix=suppressions deletes stale
// `// cslint: allow(...)` comments in place instead of reporting them.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "callgraph.h"
#include "fix.h"
#include "index.h"
#include "passes.h"
#include "rules.h"
#include "source_file.h"

namespace {

namespace fs = std::filesystem;

struct Options {
  std::string root;
  std::string cache_path;
  std::string report_path;
  bool fix_suppressions = false;
};

bool ParseArgs(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--cache=", 0) == 0) {
      opts->cache_path = arg.substr(8);
    } else if (arg.rfind("--report=", 0) == 0) {
      opts->report_path = arg.substr(9);
    } else if (arg == "--fix=suppressions") {
      opts->fix_suppressions = true;
    } else if (arg.rfind("--", 0) == 0) {
      return false;
    } else if (opts->root.empty()) {
      opts->root = arg;
    } else {
      return false;
    }
  }
  return !opts->root.empty();
}

bool LoadRegistry(const fs::path& path, std::vector<std::string>* registry) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    // The registry format is "<name> [description...]" — only the first
    // whitespace-separated token is the metric name; the rest feeds the
    // generated Prometheus # HELP table (tools/gen_metric_help.cmake).
    const size_t e = line.find_first_of(" \t\r", b);
    registry->push_back(
        line.substr(b, (e == std::string::npos ? line.size() : e) - b));
  }
  return true;
}

std::string ReadFileOrEmpty(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool IsLintedFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::vector<fs::path> CollectFiles(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      // Lint fixtures deliberately violate the rules; generated trees
      // are not ours to lint.
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (name == "testdata" || name.rfind("build", 0) == 0)) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && IsLintedFile(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseArgs(argc, argv, &opts)) {
    std::fprintf(stderr,
                 "usage: %s [--cache=FILE] [--report=FILE] "
                 "[--fix=suppressions] <repo_root>\n",
                 argv[0]);
    return 2;
  }
  const fs::path root(opts.root);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "cslint: %s does not look like the repo root\n",
                 opts.root.c_str());
    return 2;
  }

  std::vector<std::string> registry;
  if (!LoadRegistry(root / "docs" / "metrics_registry.txt", &registry)) {
    std::fprintf(stderr,
                 "cslint: cannot read docs/metrics_registry.txt under %s\n",
                 opts.root.c_str());
    return 2;
  }
  const cslint::LockRankTable ranks = cslint::ParseLockRanks(
      ReadFileOrEmpty(root / "docs" / "static_analysis.md"));

  // Phase 1: lex + extract (cache satisfies unchanged files).
  cslint::SymbolCache cache;
  if (!opts.cache_path.empty()) cache.Load(opts.cache_path);

  const std::vector<fs::path> paths = CollectFiles(root);
  std::map<std::string, cslint::SourceFile> files;
  std::map<std::string, cslint::FileSymbols> symbols;
  std::vector<std::string> rels;
  for (const fs::path& path : paths) {
    const std::string rel = fs::relative(path, root).generic_string();
    cslint::SourceFile file;
    if (!file.Load(path.string())) {
      std::fprintf(stderr, "cslint: cannot read %s\n", path.string().c_str());
      return 2;
    }
    bool hashed = false;
    const uint64_t hash = cslint::HashFileBytes(path.string(), &hashed);
    const cslint::FileSymbols* cached =
        hashed ? cache.Lookup(rel, hash) : nullptr;
    if (cached != nullptr) {
      symbols[rel] = *cached;
    } else {
      symbols[rel] = cslint::ExtractSymbols(file);
      if (hashed) cache.Put(rel, hash, symbols[rel]);
    }
    files.emplace(rel, std::move(file));
    rels.push_back(rel);
  }
  cache.Prune(rels);
  if (!opts.cache_path.empty() && !cache.Save(opts.cache_path)) {
    std::fprintf(stderr, "cslint: warning: cannot write cache %s\n",
                 opts.cache_path.c_str());
  }

  cslint::StatusFunctionIndex index;
  size_t function_count = 0;
  for (const auto& [rel, syms] : symbols) {
    index.Collect(syms);
    function_count += syms.functions.size();
  }
  index.Finalize();

  // Phase 2: per-line rules, then the call-graph passes.
  std::vector<cslint::Finding> findings;
  for (const auto& [rel, file] : files) {
    cslint::CheckDiscardedStatus(file, index, &findings);
    cslint::CheckNakedNew(file, rel, &findings);
    cslint::CheckLockInLoop(file, &findings);
    cslint::CheckMetricNames(file, registry, &findings);
    if (rel.size() > 2 && rel.substr(rel.size() - 2) == ".h") {
      cslint::CheckIncludeGuard(file, rel, &findings);
    }
  }

  const cslint::CallGraph graph = cslint::CallGraph::Build(symbols);
  cslint::PassContext ctx;
  ctx.graph = &graph;
  ctx.files = &files;
  ctx.ranks = ranks;
  cslint::CheckSignalSafety(ctx, &findings);
  cslint::CheckLockOrder(ctx, &findings);
  cslint::CheckFpDeterminism(ctx, &findings);

  // The stale audit must run after every pass that can consume a
  // suppression; in fix mode the stale markers are deleted instead.
  size_t fixed_sites = 0, fixed_files = 0;
  if (opts.fix_suppressions) {
    for (const auto& [rel, file] : files) {
      const std::vector<cslint::AllowSite> stale = file.StaleAllowSites();
      if (stale.empty()) continue;
      const std::string text = ReadFileOrEmpty(file.path());
      if (text.empty()) continue;
      std::ofstream out(file.path(), std::ios::binary | std::ios::trunc);
      if (!out) {
        std::fprintf(stderr, "cslint: cannot rewrite %s\n",
                     file.path().c_str());
        return 2;
      }
      out << cslint::RemoveSuppressions(text, stale);
      fixed_sites += stale.size();
      ++fixed_files;
    }
    std::printf("cslint: removed %zu stale suppression(s) in %zu file(s)\n",
                fixed_sites, fixed_files);
  } else {
    cslint::CheckStaleSuppressions(files, &findings);
  }

  std::sort(findings.begin(), findings.end(),
            [](const cslint::Finding& a, const cslint::Finding& b) {
              if (a.path != b.path) return a.path < b.path;
              if (a.line != b.line) return a.line < b.line;
              return a.rule < b.rule;
            });

  for (const cslint::Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  std::fprintf(stderr,
               "cslint: indexed %zu files / %zu functions "
               "(cache: %d hit, %d extracted)\n",
               files.size(), function_count, cache.hits(), cache.misses());

  if (!opts.report_path.empty()) {
    std::ofstream report(opts.report_path, std::ios::trunc);
    if (report) {
      report << "cslint report\n"
             << "files: " << files.size() << "\n"
             << "functions: " << function_count << "\n"
             << "cache_hits: " << cache.hits() << "\n"
             << "cache_misses: " << cache.misses() << "\n"
             << "findings: " << findings.size() << "\n";
      for (const cslint::Finding& f : findings) {
        report << f.path << ":" << f.line << ": [" << f.rule << "] "
               << f.message << "\n";
      }
    } else {
      std::fprintf(stderr, "cslint: warning: cannot write report %s\n",
                   opts.report_path.c_str());
    }
  }

  if (!findings.empty()) {
    std::printf("cslint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
