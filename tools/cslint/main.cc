// cslint — project-specific lint for the crowdselect tree.
//
//   cslint <repo_root>
//
// Walks src/, tools/ and bench/ under <repo_root> and enforces the rules
// described in rules.h (and docs/static_analysis.md). Prints one line per
// finding in `path:line: [rule] message` format; exits 1 when anything
// fired, 2 on usage / I/O errors, 0 on a clean tree.
#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "rules.h"
#include "source_file.h"

namespace {

namespace fs = std::filesystem;

bool LoadRegistry(const fs::path& path, std::vector<std::string>* registry) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    const size_t b = line.find_first_not_of(" \t");
    if (b == std::string::npos || line[b] == '#') continue;
    // The registry format is "<name> [description...]" — only the first
    // whitespace-separated token is the metric name; the rest feeds the
    // generated Prometheus # HELP table (tools/gen_metric_help.cmake).
    const size_t e = line.find_first_of(" \t\r", b);
    registry->push_back(
        line.substr(b, (e == std::string::npos ? line.size() : e) - b));
  }
  return true;
}

bool IsLintedFile(const fs::path& path) {
  const std::string ext = path.extension().string();
  return ext == ".h" || ext == ".cc";
}

std::vector<fs::path> CollectFiles(const fs::path& root) {
  std::vector<fs::path> files;
  for (const char* dir : {"src", "tools", "bench"}) {
    const fs::path base = root / dir;
    if (!fs::exists(base)) continue;
    for (auto it = fs::recursive_directory_iterator(base);
         it != fs::recursive_directory_iterator(); ++it) {
      // Lint fixtures deliberately violate the rules; generated trees
      // are not ours to lint.
      const std::string name = it->path().filename().string();
      if (it->is_directory() &&
          (name == "testdata" || name.rfind("build", 0) == 0)) {
        it.disable_recursion_pending();
        continue;
      }
      if (it->is_regular_file() && IsLintedFile(it->path())) {
        files.push_back(it->path());
      }
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: %s <repo_root>\n", argv[0]);
    return 2;
  }
  const fs::path root(argv[1]);
  if (!fs::exists(root / "src")) {
    std::fprintf(stderr, "cslint: %s does not look like the repo root\n",
                 argv[1]);
    return 2;
  }

  std::vector<std::string> registry;
  if (!LoadRegistry(root / "docs" / "metrics_registry.txt", &registry)) {
    std::fprintf(stderr,
                 "cslint: cannot read docs/metrics_registry.txt under %s\n",
                 argv[1]);
    return 2;
  }

  const std::vector<fs::path> paths = CollectFiles(root);
  std::vector<cslint::SourceFile> files;
  files.reserve(paths.size());
  cslint::StatusFunctionIndex index;
  for (const fs::path& path : paths) {
    cslint::SourceFile file;
    if (!file.Load(path.string())) {
      std::fprintf(stderr, "cslint: cannot read %s\n", path.string().c_str());
      return 2;
    }
    index.Collect(file);
    files.push_back(std::move(file));
  }
  index.Finalize();

  std::vector<cslint::Finding> findings;
  for (const cslint::SourceFile& file : files) {
    const std::string rel =
        fs::relative(file.path(), root).generic_string();
    cslint::CheckDiscardedStatus(file, index, &findings);
    cslint::CheckNakedNew(file, rel, &findings);
    cslint::CheckLockInLoop(file, &findings);
    cslint::CheckMetricNames(file, registry, &findings);
    if (rel.size() > 2 && rel.substr(rel.size() - 2) == ".h") {
      cslint::CheckIncludeGuard(file, rel, &findings);
    }
  }

  for (const cslint::Finding& f : findings) {
    std::printf("%s:%d: [%s] %s\n", f.path.c_str(), f.line, f.rule.c_str(),
                f.message.c_str());
  }
  if (!findings.empty()) {
    std::printf("cslint: %zu finding(s)\n", findings.size());
    return 1;
  }
  return 0;
}
