#include "rules.h"

#include <cctype>
#include <regex>

namespace cslint {

namespace {

void Add(std::vector<Finding>* findings, const SourceFile& file, int line,
         const std::string& rule, const std::string& message) {
  if (file.IsAllowed(line, rule)) return;
  findings->push_back(Finding{file.path(), line, rule, message});
}

bool EndsStatement(const std::string& trimmed) {
  if (trimmed.empty()) return true;
  const char last = trimmed.back();
  return last == ';' || last == '{' || last == '}' || last == ':' ||
         trimmed[0] == '#';
}

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

// ---------------------------------------------------------------------------
// discarded-status

namespace {

// `Status Foo(`, `util::Status Bar::Baz(`, `Result<std::vector<T>> Qux(`
// — possibly after static/virtual/etc. specifiers. (Declaration names
// are extracted in phase 1 — see index.cc — and arrive here through
// FileSymbols; this regex is kept only to recognize declaration lines
// inside CheckDiscardedStatus.)
const std::regex kStatusDeclRe(
    R"(^\s*(?:(?:static|inline|virtual|constexpr|explicit|friend)\s+)*)"
    R"((?:util::|crowdselect::)?(?:Status|Result<[^;={}]*>)\s+)"
    R"((?:[A-Za-z_]\w*::)*([A-Za-z_]\w*)\s*\()");

// A call starting a statement: optional `obj.` / `ptr->` / `ns::` chain,
// then the callee name and its opening paren, at the start of the line.
const std::regex kStatementCallRe(
    R"(^\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\()");

// `(void)` cast of a call — requires a justifying comment nearby.
const std::regex kVoidCastRe(R"(^\s*\(void\)\s*(?:[A-Za-z_]\w*(?:\.|->|::))*([A-Za-z_]\w*)\s*\()");

}  // namespace

void StatusFunctionIndex::Collect(const FileSymbols& symbols) {
  status_returning.insert(symbols.status_decls.begin(),
                          symbols.status_decls.end());
  other_returning_.insert(symbols.other_decls.begin(),
                          symbols.other_decls.end());
}

void StatusFunctionIndex::Finalize() {
  for (const std::string& name : other_returning_) {
    status_returning.erase(name);
  }
  // Constructor-style names would otherwise look like calls.
  status_returning.erase("Status");
  status_returning.erase("Result");
}

void CheckDiscardedStatus(const SourceFile& file,
                          const StatusFunctionIndex& index,
                          std::vector<Finding>* findings) {
  const auto& code = file.code();
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    std::smatch m;
    if (std::regex_search(line, m, kVoidCastRe)) {
      if (!index.status_returning.count(m[1].str())) continue;
      // A deliberate swallow must say why: a comment on the same line or
      // one of the two lines above.
      bool commented = false;
      for (int back = 0; back <= 2 && static_cast<int>(i) - back >= 0;
           ++back) {
        const std::string& raw = file.raw()[i - back];
        if (raw.find("//") != std::string::npos ||
            raw.find("/*") != std::string::npos) {
          commented = true;
          break;
        }
      }
      if (!commented) {
        Add(findings, file, static_cast<int>(i) + 1, "discarded-status",
            "(void)-cast of " + m[1].str() +
                "() needs a comment justifying the swallowed error");
      }
      continue;
    }
    if (!std::regex_search(line, m, kStatementCallRe)) continue;
    const std::string name = m[1].str();
    if (!index.status_returning.count(name)) continue;
    // Only expression-statements: the previous code line must have ended
    // a statement, so `x = \n  Foo(...)` or `return \n Foo(...)` are out.
    if (i > 0 && !EndsStatement(Trim(code[i - 1]))) continue;
    // Declarations (`Status Foo(...)`) match kStatusDeclRe, not this.
    std::smatch decl;
    if (std::regex_search(line, decl, kStatusDeclRe)) continue;
    Add(findings, file, static_cast<int>(i) + 1, "discarded-status",
        "result of " + name +
            "() is discarded; handle it, CS_RETURN_NOT_OK it, or cast to "
            "(void) with a comment");
  }
}

// ---------------------------------------------------------------------------
// naked-new

namespace {

const std::regex kNewRe(R"((^|[^\w.])new\s+[A-Za-z_(])");
const std::regex kDeleteRe(R"((^|[^\w.])delete(\s*\[\s*\])?\s+[A-Za-z_(*])");
const std::regex kDeletedFnRe(R"(=\s*delete\s*;?)");
const std::regex kAdoptionRe(R"(_ptr\s*<)");

}  // namespace

void CheckNakedNew(const SourceFile& file, const std::string& repo_relative,
                   std::vector<Finding>* findings) {
  if (repo_relative.rfind("src/util/", 0) == 0) return;
  const auto& code = file.code();
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    std::smatch m;
    if (std::regex_search(line, m, kNewRe)) {
      // Adoption into a smart pointer (possibly wrapped onto the next
      // line by the formatter) owns the allocation immediately.
      const bool adopted =
          std::regex_search(line, kAdoptionRe) ||
          (i > 0 && std::regex_search(code[i - 1], kAdoptionRe));
      if (!adopted) {
        Add(findings, file, static_cast<int>(i) + 1, "naked-new",
            "naked `new` outside src/util/; use std::make_unique / "
            "std::make_shared or adopt into a smart pointer directly");
      }
    }
    if (std::regex_search(line, m, kDeleteRe) &&
        !std::regex_search(line, kDeletedFnRe)) {
      Add(findings, file, static_cast<int>(i) + 1, "naked-new",
          "naked `delete` outside src/util/; ownership belongs in a "
          "smart pointer");
    }
  }
}

// ---------------------------------------------------------------------------
// lock-in-loop

namespace {

const std::regex kLoopRe(R"((^|[^\w])(for|while)\s*\()");
const std::regex kLockAcqRe(
    R"(std::(lock_guard|unique_lock|shared_lock|scoped_lock)\b|)"
    R"([.>](lock|lock_shared|try_lock|try_lock_shared)\s*\()");
const std::regex kLockOrderCommentRe(R"([Ll]ock[ -]order)");

struct OpenLoop {
  int line = 0;   // 0-based line of the loop header.
  int depth = 0;  // Brace depth *before* the loop header line.
};

}  // namespace

void CheckLockInLoop(const SourceFile& file, std::vector<Finding>* findings) {
  const auto& code = file.code();
  int depth = 0;
  std::vector<OpenLoop> loops;
  for (size_t i = 0; i < code.size(); ++i) {
    const std::string& line = code[i];
    // A loop whose body never opened a brace ends after its single
    // statement; drop loops we have clearly moved past.
    while (!loops.empty() && depth <= loops.back().depth &&
           static_cast<int>(i) > loops.back().line + 1) {
      loops.pop_back();
    }
    const bool is_loop_header = std::regex_search(line, kLoopRe);
    if (!is_loop_header && !loops.empty() &&
        std::regex_search(line, kLockAcqRe)) {
      bool documented = false;
      for (int back = 0; back <= 5 && static_cast<int>(i) - back >= 0;
           ++back) {
        if (std::regex_search(file.raw()[i - back], kLockOrderCommentRe)) {
          documented = true;
          break;
        }
      }
      if (!documented) {
        Add(findings, file, static_cast<int>(i) + 1, "lock-in-loop",
            "mutex acquired inside a loop without a lock-order comment; "
            "document the ordering (see docs/static_analysis.md) within "
            "the 5 lines above the acquisition");
      }
    }
    if (is_loop_header) loops.push_back(OpenLoop{static_cast<int>(i), depth});
    for (char c : line) {
      if (c == '{') ++depth;
      if (c == '}') --depth;
    }
  }
}

// ---------------------------------------------------------------------------
// unregistered-metric

void CheckMetricNames(const SourceFile& file,
                      const std::vector<std::string>& registry,
                      std::vector<Finding>* findings) {
  static const std::regex kMetricRe(
      R"(^(storage|serve|crowd|select|watchdog|flightrec|profiler|model|router|quality|timeseries|alert)\.[A-Za-z0-9_.%]*$)");
  for (const StringLiteral& lit : file.strings()) {
    if (!std::regex_match(lit.content, kMetricRe)) continue;
    // Names built via StringPrintf carry % specifiers; match the static
    // prefix against a wildcard entry.
    std::string name = lit.content.substr(0, lit.content.find('%'));
    bool registered = false;
    for (const std::string& entry : registry) {
      if (!entry.empty() && entry.back() == '*') {
        if (name.rfind(entry.substr(0, entry.size() - 1), 0) == 0) {
          registered = true;
          break;
        }
      } else if (entry == name) {
        registered = true;
        break;
      }
    }
    if (!registered) {
      Add(findings, file, lit.line, "unregistered-metric",
          "metric/span name \"" + lit.content +
              "\" is not in docs/metrics_registry.txt");
    }
  }
}

// ---------------------------------------------------------------------------
// include-guard

void CheckIncludeGuard(const SourceFile& file,
                       const std::string& repo_relative,
                       std::vector<Finding>* findings) {
  std::string rel = repo_relative;
  if (rel.rfind("src/", 0) == 0) rel = rel.substr(4);
  std::string expected = "CROWDSELECT_";
  for (char c : rel) {
    expected += std::isalnum(static_cast<unsigned char>(c))
                    ? static_cast<char>(
                          std::toupper(static_cast<unsigned char>(c)))
                    : '_';
  }
  expected += '_';
  bool has_ifndef = false, has_define = false;
  int first_directive_line = 1;
  for (size_t i = 0; i < file.code().size(); ++i) {
    const std::string trimmed = Trim(file.code()[i]);
    if (trimmed.rfind("#ifndef ", 0) == 0) {
      first_directive_line = static_cast<int>(i) + 1;
      has_ifndef = Trim(trimmed.substr(8)) == expected;
      break;
    }
    if (trimmed.rfind("#pragma once", 0) == 0) {
      Add(findings, file, static_cast<int>(i) + 1, "include-guard",
          "use the project include-guard style (" + expected +
              "), not #pragma once");
      return;
    }
  }
  for (const std::string& line : file.code()) {
    if (Trim(line) == "#define " + expected ||
        Trim(line).rfind("#define " + expected, 0) == 0) {
      has_define = true;
      break;
    }
  }
  if (!has_ifndef || !has_define) {
    Add(findings, file, first_directive_line, "include-guard",
        "header guard must be " + expected + " (derived from the path)");
  }
}

}  // namespace cslint
