// `cslint --fix=suppressions`: delete stale allow() markers in place.
#ifndef CROWDSELECT_TOOLS_CSLINT_FIX_H_
#define CROWDSELECT_TOOLS_CSLINT_FIX_H_

#include <string>
#include <vector>

#include "source_file.h"

namespace cslint {

/// Returns `text` with the `// cslint: allow(<rule>)` comments at `sites`
/// removed. A marker that shares its line with code loses only the
/// comment (trailing whitespace trimmed); a marker alone on its line
/// loses the whole line. Line numbers in `sites` are 1-based and refer
/// to `text` before any removal.
std::string RemoveSuppressions(const std::string& text,
                               const std::vector<AllowSite>& sites);

}  // namespace cslint

#endif  // CROWDSELECT_TOOLS_CSLINT_FIX_H_
