// Unit tests for the cslint v2 extraction, cache, graph and fix layers.
#include <cstdio>
#include <fstream>
#include <string>

#include <gtest/gtest.h>

#include "callgraph.h"
#include "fix.h"
#include "index.h"
#include "passes.h"
#include "source_file.h"

namespace cslint {
namespace {

SourceFile Lexed(const std::string& text) {
  SourceFile file;
  file.LoadFromString("test.cc", text);
  return file;
}

TEST(SourceFile, CapturesCommentsPerLine) {
  SourceFile file = Lexed(
      "int x;  // trailing\n"
      "// cs:signal-safe\n"
      "void F() {}\n");
  EXPECT_NE(file.CommentAt(1).find("trailing"), std::string::npos);
  EXPECT_NE(file.CommentAt(2).find("cs:signal-safe"), std::string::npos);
  EXPECT_EQ(file.CommentAt(3), "");
}

TEST(SourceFile, TracksConsumedSuppressions) {
  SourceFile file = Lexed(
      "// cslint: allow(naked-new)\n"
      "int* p = new int;\n"
      "// cslint: allow(lock-order) stale\n"
      "int q;\n");
  ASSERT_EQ(file.AllowSites().size(), 2u);
  EXPECT_TRUE(file.IsAllowed(2, "naked-new"));
  const auto stale = file.StaleAllowSites();
  ASSERT_EQ(stale.size(), 1u);
  EXPECT_EQ(stale[0].line, 3);
  EXPECT_EQ(stale[0].rule, "lock-order");
}

TEST(Extract, FunctionsWithQualifiersAndCalls) {
  SourceFile file = Lexed(
      "int Ring::Size() const { return Count(); }\n"
      "void Helper() {\n"
      "  FlightRecorder::Global().DumpToFd(2);\n"
      "  auto* p = new char[8];\n"
      "}\n");
  const FileSymbols syms = ExtractSymbols(file);
  ASSERT_EQ(syms.functions.size(), 2u);
  EXPECT_EQ(syms.functions[0].name, "Size");
  EXPECT_EQ(syms.functions[0].qualifier, "Ring");
  ASSERT_EQ(syms.functions[0].calls.size(), 1u);
  EXPECT_EQ(syms.functions[0].calls[0].name, "Count");

  const FunctionInfo& helper = syms.functions[1];
  EXPECT_EQ(helper.name, "Helper");
  ASSERT_EQ(helper.calls.size(), 3u);
  EXPECT_EQ(helper.calls[0].name, "Global");
  EXPECT_EQ(helper.calls[0].qualifier, "FlightRecorder");
  EXPECT_EQ(helper.calls[1].name, "DumpToFd");
  EXPECT_EQ(helper.calls[2].name, "::new");
}

TEST(Extract, SignalSafeAnnotationAndMethodsInClass) {
  SourceFile file = Lexed(
      "class Recorder {\n"
      " public:\n"
      "  // cs:signal-safe\n"
      "  void Dump(int fd) { write(fd, \"x\", 1); }\n"
      "  void Reset() { Dump(2); }\n"
      "};\n");
  const FileSymbols syms = ExtractSymbols(file);
  ASSERT_EQ(syms.functions.size(), 2u);
  EXPECT_EQ(syms.functions[0].qualifier, "Recorder");
  EXPECT_TRUE(syms.functions[0].signal_safe);
  EXPECT_FALSE(syms.functions[1].signal_safe);
}

TEST(Extract, CtorInitializerListIsNotABody) {
  SourceFile file = Lexed(
      "Watchdog::Watchdog(int n)\n"
      "    : limit_(Clamp(n)), name_{\"wd\"} {\n"
      "  Arm();\n"
      "}\n");
  const FileSymbols syms = ExtractSymbols(file);
  ASSERT_EQ(syms.functions.size(), 1u);
  EXPECT_EQ(syms.functions[0].name, "Watchdog");
  // Initializer-list calls are not body calls.
  ASSERT_EQ(syms.functions[0].calls.size(), 1u);
  EXPECT_EQ(syms.functions[0].calls[0].name, "Arm");
}

TEST(Extract, LockSitesWithAnnotationsAndCtad) {
  SourceFile file = Lexed(
      "void StorageEngine::Apply() {\n"
      "  // cs:lock(crowddb.apply)\n"
      "  std::shared_lock lock(apply_mu_);\n"
      "  {\n"
      "    // cs:lock(crowddb.wal)\n"
      "    std::lock_guard<lockdep::Mutex> wal(wal_mu_);\n"
      "  }\n"
      "  first_->lock();\n"
      "}\n");
  const FileSymbols syms = ExtractSymbols(file);
  ASSERT_EQ(syms.functions.size(), 1u);
  const FunctionInfo& fn = syms.functions[0];
  ASSERT_EQ(fn.locks.size(), 3u);
  EXPECT_EQ(fn.locks[0].lock_class, "crowddb.apply");
  EXPECT_TRUE(fn.locks[0].shared);
  EXPECT_EQ(fn.locks[1].lock_class, "crowddb.wal");
  EXPECT_LT(fn.locks[1].scope_end, fn.end_line);
  EXPECT_TRUE(fn.locks[2].raw_call);
  EXPECT_EQ(fn.locks[2].lock_class, "");
}

TEST(Cache, RoundTripsAndInvalidatesByHash) {
  SourceFile file = Lexed("void F() { G(); }\n");
  FileSymbols syms = ExtractSymbols(file);
  SymbolCache cache;
  cache.Put("src/f.cc", 42, syms);

  const std::string path =
      std::string(::testing::TempDir()) + "/cslint_cache_test";
  ASSERT_TRUE(cache.Save(path));

  SymbolCache loaded;
  loaded.Load(path);
  EXPECT_EQ(loaded.size(), 1u);
  const FileSymbols* hit = loaded.Lookup("src/f.cc", 42);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->functions.size(), 1u);
  EXPECT_EQ(hit->functions[0].name, "F");
  ASSERT_EQ(hit->functions[0].calls.size(), 1u);
  EXPECT_EQ(hit->functions[0].calls[0].name, "G");
  // Changed bytes -> miss; unknown file -> miss.
  EXPECT_EQ(loaded.Lookup("src/f.cc", 43), nullptr);
  EXPECT_EQ(loaded.Lookup("src/g.cc", 42), nullptr);
  EXPECT_EQ(loaded.hits(), 1);
  EXPECT_EQ(loaded.misses(), 2);
  std::remove(path.c_str());
}

TEST(Cache, PruneDropsDeadEntries) {
  SymbolCache cache;
  cache.Put("a.cc", 1, FileSymbols{});
  cache.Put("b.cc", 2, FileSymbols{});
  cache.Prune({"b.cc"});
  EXPECT_EQ(cache.size(), 1u);
  EXPECT_EQ(cache.Lookup("a.cc", 1), nullptr);
  EXPECT_NE(cache.Lookup("b.cc", 2), nullptr);
}

TEST(CallGraph, QualifierAwareResolution) {
  std::map<std::string, FileSymbols> files;
  {
    SourceFile a = Lexed(
        "void Ring::Dump() {}\n"
        "void Buffer::Dump() {}\n"
        "void Use() { Ring::Dump(); Other(); }\n");
    files["a.cc"] = ExtractSymbols(a);
  }
  const CallGraph g = CallGraph::Build(files);
  ASSERT_EQ(g.nodes().size(), 3u);
  CallSite qualified{"Dump", "Ring", 3};
  const std::vector<int> exact = g.Resolve(qualified);
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(g.Display(exact[0]), "Ring::Dump");
  CallSite bare{"Dump", "", 3};
  EXPECT_EQ(g.Resolve(bare).size(), 2u);
}

TEST(Passes, ParseLockRanks) {
  const LockRankTable table = ParseLockRanks(
      "intro text\n"
      "    cs:lock-rank crowddb.apply 10\n"
      "    cs:lock-rank obs.flightrec 80 leaf\n");
  ASSERT_EQ(table.size(), 2u);
  EXPECT_EQ(table.at("crowddb.apply").rank, 10);
  EXPECT_FALSE(table.at("crowddb.apply").leaf);
  EXPECT_TRUE(table.at("obs.flightrec").leaf);
}

TEST(Fix, RemovesTrailingMarkerKeepsCode) {
  const std::string text =
      "int* p = new int;  // cslint: allow(naked-new) pool storage\n"
      "int q = 1;\n";
  const std::string fixed =
      RemoveSuppressions(text, {AllowSite{1, "naked-new"}});
  EXPECT_EQ(fixed, "int* p = new int;\nint q = 1;\n");
}

TEST(Fix, DropsMarkerOnlyLines) {
  const std::string text =
      "// cslint: allow(lock-order) obsolete\n"
      "DoWork();\n";
  const std::string fixed =
      RemoveSuppressions(text, {AllowSite{1, "lock-order"}});
  EXPECT_EQ(fixed, "DoWork();\n");
}

TEST(Fix, LeavesUnlistedLinesAlone) {
  const std::string text =
      "// cslint: allow(naked-new) still used\n"
      "int* p = new int;\n"
      "// cslint: allow(naked-new) stale\n"
      "int q;\n";
  const std::string fixed =
      RemoveSuppressions(text, {AllowSite{3, "naked-new"}});
  EXPECT_EQ(fixed,
            "// cslint: allow(naked-new) still used\n"
            "int* p = new int;\n"
            "int q;\n");
}

TEST(Fix, EndToEndStaleDetectionFeedsFix) {
  // The full loop the --fix=suppressions mode runs: lex, let rules
  // consume suppressions, remove what is left.
  SourceFile file = Lexed(
      "// cslint: allow(naked-new) adopted below\n"
      "int* p = new int;\n"
      "// cslint: allow(include-guard) never fires\n"
      "int q;\n");
  EXPECT_TRUE(file.IsAllowed(2, "naked-new"));  // Rule pass consumed it.
  const std::string fixed = RemoveSuppressions(
      "// cslint: allow(naked-new) adopted below\n"
      "int* p = new int;\n"
      "// cslint: allow(include-guard) never fires\n"
      "int q;\n",
      file.StaleAllowSites());
  EXPECT_EQ(fixed,
            "// cslint: allow(naked-new) adopted below\n"
            "int* p = new int;\n"
            "int q;\n");
}

}  // namespace
}  // namespace cslint
