// Fixture: a cs:signal-safe handler that reaches unsafe functions three
// ways — a direct libc call off the allowlist, an allocating call, and a
// project function that is not annotated.
#include <cstdio>
#include <cstdlib>

void WriteReport() { std::printf("report\n"); }

// cs:signal-safe
void FormatCrashLine(char* buf, int n) {
  std::snprintf(buf, n, "crash");
}

// cs:signal-safe
void HandleSignal(int) {
  char* buf = static_cast<char*>(malloc(32));
  FormatCrashLine(buf, 32);
  WriteReport();
}
