// Fixture: the guard does not match the path (want CROWDSELECT_BAD_H_).
#ifndef TOTALLY_WRONG_GUARD_H_
#define TOTALLY_WRONG_GUARD_H_

namespace bad {
Status DoWork();
}  // namespace bad

#endif  // TOTALLY_WRONG_GUARD_H_
