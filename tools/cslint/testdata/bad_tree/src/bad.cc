// Fixture: one violation of each cslint rule except include-guard (which
// lives in bad.h). This file is lint input only; it is never compiled.
#include "bad.h"

namespace bad {

void Caller(Registry* reg) {
  DoWork();  // discarded-status: the returned Status vanishes.

  int* counter = new int(0);  // naked-new outside src/util/.

  for (int i = 0; i < 4; ++i) {
    std::lock_guard<std::mutex> guard(mu_);  // lock-in-loop, undocumented.
    *counter += i;
  }

  reg->GetCounter("storage.not.in.registry")->Increment();
}

}  // namespace bad
