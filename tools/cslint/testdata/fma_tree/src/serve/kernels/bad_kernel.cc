// Fixture: a kernel TU that fuses multiply-add and calls a
// non-correctly-rounded libm function.
#include <cmath>

float BadDot(const float* a, const float* b, int n) {
  float acc = 0.0f;
  for (int i = 0; i < n; ++i) {
    acc = std::fma(a[i], b[i], acc);
  }
  return std::exp(acc);
}
