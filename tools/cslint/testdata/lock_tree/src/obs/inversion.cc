// Fixture: rank inversions against the cs:lock-rank table in
// docs/static_analysis.md — one direct (outer taken under inner) and one
// through a call (same rank re-acquired in a callee).
#include <mutex>

std::mutex g_outer;
std::mutex g_inner;

void TakeInnerAgain() {
  // cs:lock(fixture.inner)
  std::lock_guard<std::mutex> lock(g_inner);
}

void DirectInversion() {
  // cs:lock(fixture.inner)
  std::lock_guard<std::mutex> inner(g_inner);
  // cs:lock(fixture.outer)
  std::lock_guard<std::mutex> outer(g_outer);
}

void InversionViaCall() {
  // cs:lock(fixture.inner)
  std::lock_guard<std::mutex> inner(g_inner);
  TakeInnerAgain();
}
