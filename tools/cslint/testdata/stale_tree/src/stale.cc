// Fixture: a suppression that no longer suppresses anything.
int Answer() {
  // cslint: allow(naked-new) was for an allocation deleted long ago
  return 42;
}
