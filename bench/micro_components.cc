// Micro-benchmarks of the computational kernels behind the paper's
// running-time claims: Cholesky solves (worker E-step), the CG subproblem
// and fold-in (task E-step / Algorithm 3), and top-k ranking — each as a
// function of the latent dimension K. These decompose the Fig. 4/6/8
// latencies: fold-in dominates, ranking is negligible.
#include <benchmark/benchmark.h>

#include <map>

#include "crowdselect/crowdselect.h"

using namespace crowdselect;

namespace {

Matrix RandomSpd(size_t n, Rng* rng) {
  Matrix a(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) a(i, j) = rng->Normal();
  }
  Matrix spd = a.Multiply(a.Transposed());
  spd.AddDiagonal(1.0);
  return spd;
}

void BM_CholeskySolve(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  Rng rng(1);
  const Matrix a = RandomSpd(k, &rng);
  Vector b(k);
  for (size_t i = 0; i < k; ++i) b[i] = rng.Normal();
  for (auto _ : state) {
    auto chol = Cholesky::Factorize(a);
    benchmark::DoNotOptimize(chol->Solve(b));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(10)->Arg(20)->Arg(30)->Arg(50)
    ->Unit(benchmark::kMicrosecond);

// The trained model used by the fold-in / ranking benches below.
struct FoldFixture {
  TdpmSelector selector;
  BagOfWords probe;
  std::vector<WorkerId> candidates;

  static FoldFixture* Get(size_t k) {
    static std::map<size_t, FoldFixture*> cache;
    auto it = cache.find(k);
    if (it != cache.end()) return it->second;
    PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
    config.world.num_workers = 200;
    config.world.num_tasks = 600;
    config.world.vocab_size = 600;
    auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 33);
    CS_CHECK(dataset.ok());
    TdpmOptions options;
    options.num_categories = k;
    options.max_em_iterations = 10;
    options.num_threads = 0;
    // cslint: allow(naked-new): cached fixture, leaked for the process.
    auto* fixture = new FoldFixture{TdpmSelector(options),
                                    dataset->db.GetTask(0).value()->bag,
                                    dataset->db.OnlineWorkers()};
    CS_CHECK_OK(fixture->selector.Train(dataset->db));
    cache[k] = fixture;
    return fixture;
  }
};

void BM_FoldIn(benchmark::State& state) {
  FoldFixture* fixture = FoldFixture::Get(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    auto projected = fixture->selector.ProjectTask(fixture->probe);
    benchmark::DoNotOptimize(projected.value());
  }
}
BENCHMARK(BM_FoldIn)->Arg(10)->Arg(30)->Arg(50)->Unit(benchmark::kMicrosecond);

void BM_SelectTopK(benchmark::State& state) {
  FoldFixture* fixture = FoldFixture::Get(30);
  const size_t top = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    auto selected = fixture->selector.SelectTopK(fixture->probe, top,
                                                 fixture->candidates);
    benchmark::DoNotOptimize(selected.value());
  }
}
BENCHMARK(BM_SelectTopK)->Arg(1)->Arg(2)->Arg(10)
    ->Unit(benchmark::kMicrosecond);

// Ranking alone (scores precomputed posture): TopKAccumulator over 10k
// candidates.
void BM_TopKAccumulator(benchmark::State& state) {
  Rng rng(9);
  std::vector<double> scores(10000);
  for (auto& s : scores) s = rng.Normal();
  for (auto _ : state) {
    TopKAccumulator acc(static_cast<size_t>(state.range(0)));
    for (size_t i = 0; i < scores.size(); ++i) {
      acc.Offer(static_cast<WorkerId>(i), scores[i]);
    }
    benchmark::DoNotOptimize(acc.Take());
  }
}
BENCHMARK(BM_TopKAccumulator)->Arg(1)->Arg(10)->Arg(100)
    ->Unit(benchmark::kMicrosecond);

// Incremental skill update: one observation + posterior refresh.
void BM_IncrementalSkillUpdate(benchmark::State& state) {
  const size_t k = static_cast<size_t>(state.range(0));
  TdpmModelParams params = TdpmModelParams::Init(k, 10);
  auto updater = IncrementalSkillUpdater::Create(params);
  CS_CHECK(updater.ok());
  auto worker_state = updater->NewWorkerState();
  Rng rng(3);
  SkillObservation obs;
  obs.category_mean = Vector(k);
  obs.category_var = Vector(k, 0.1);
  for (size_t i = 0; i < k; ++i) obs.category_mean[i] = rng.Normal();
  obs.score = 2.0;
  for (auto _ : state) {
    updater->Observe(obs, &worker_state);
    benchmark::DoNotOptimize(updater->Posterior(worker_state).value());
  }
}
BENCHMARK(BM_IncrementalSkillUpdate)->Arg(10)->Arg(30)->Arg(50)
    ->Unit(benchmark::kMicrosecond);

// Cost of one metered span (arg 1) vs the disabled no-op path (arg 0) —
// the per-call observability tax paid by fold-in/selection above. Keep it
// well under 2% of the cheapest instrumented operation.
void BM_ScopedSpanOverhead(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  obs::MetricsRegistry::Global().SetEnabled(enabled);
  obs::TraceCollector::Global().SetEnabled(enabled);
  static obs::SpanMeter meter("bench.span_overhead");
  for (auto _ : state) {
    obs::ScopedSpan span(meter);
    benchmark::ClobberMemory();
  }
  obs::MetricsRegistry::Global().SetEnabled(true);
  obs::TraceCollector::Global().SetEnabled(true);
}
BENCHMARK(BM_ScopedSpanOverhead)->Arg(0)->Arg(1);

}  // namespace

BENCHMARK_MAIN();
