// Reproduces paper Table 6: Top1/Top2 recall of the crowd-selection
// algorithms across worker groups.
#include "common/table_runner.h"

int main() {
  return crowdselect::bench::RunRecallTable(
      crowdselect::Platform::kYahooAnswer, "Table 6");
}
