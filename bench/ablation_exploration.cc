// Ablation A5: exploration policies for online routing (extension beyond
// the paper). A cold-start pool — half the workers have NO resolved
// history — is routed greedily (the paper's Eq. 1), with a UCB bonus, and
// with Thompson sampling. Skills of routed workers are refreshed online
// with the incremental updater (paper §4.2 requirement (2)); cumulative
// regret vs the true best worker is reported.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"
#include "model/exploration.h"
#include "model/incremental_update.h"

using namespace crowdselect;
using namespace crowdselect::bench;

namespace {

struct PolicyOutcome {
  double cumulative_regret = 0.0;
  double early_regret_per_task = 0.0;  ///< First half of the horizon.
  double late_regret_per_task = 0.0;   ///< Second half (after learning).
  double cold_worker_selection_rate = 0.0;
};

PolicyOutcome RunPolicy(ExplorationPolicy policy, double beta) {
  // World with pronounced specialists.
  PlatformConfig config = DefaultPlatformConfig(Platform::kQuora);
  config.world.num_workers = 60;
  config.world.num_tasks = 600;
  config.world.vocab_size = 400;
  config.world.num_categories = 5;
  config.world.skill_stddev = 2.0;
  config.world.category_concentration = 3.0;
  auto dataset = GeneratePlatformDataset(Platform::kQuora, config, 404);
  CS_CHECK(dataset.ok());

  // Cold start: strip all history of the even-numbered workers. Activity
  // correlates with skill in the generated world (worker 0 is typically
  // the strongest), so the cold half contains the stars and exploration
  // has something real to discover.
  CrowdDatabase db;
  *db.mutable_vocabulary() = dataset->db.vocabulary();
  for (const auto& w : dataset->db.workers()) db.AddWorker(w.handle, w.online);
  for (const auto& t : dataset->db.tasks()) db.AddTaskWithBag(t.text, t.bag);
  for (const auto& a : dataset->db.assignments()) {
    if (a.worker % 2 == 0) continue;
    CS_CHECK_OK(db.Assign(a.worker, a.task));
    if (a.has_score) CS_CHECK_OK(db.RecordFeedback(a.worker, a.task, a.score));
  }

  TdpmOptions options;
  options.num_categories = 5;
  options.max_em_iterations = 20;
  options.num_threads = 0;
  TdpmSelector selector(options);
  CS_CHECK_OK(selector.Train(db));

  // Live posteriors, refreshed online via the incremental updater.
  auto updater = IncrementalSkillUpdater::Create(selector.fit().params);
  CS_CHECK(updater.ok());
  std::vector<WorkerPosterior> posteriors = selector.fit().state.workers;
  std::vector<IncrementalSkillUpdater::WorkerState> states;
  for (size_t i = 0; i < posteriors.size(); ++i) {
    states.push_back(updater->NewWorkerState());
    // Seed cold workers from the prior; warm workers keep their batch
    // posterior (their state only absorbs *new* feedback below, applied
    // on top of the batch posterior by re-centering the prior).
    if (i % 2 == 0) {
      auto prior = updater->Posterior(states.back());
      CS_CHECK(prior.ok());
      posteriors[i] = std::move(prior).value();
    }
  }

  ExplorationRanker ranker({.policy = policy, .ucb_beta = beta, .seed = 2030});
  TdpmGenerator generator(dataset->world.params);
  Rng rng(515);
  const int horizon = 800;
  PolicyOutcome outcome;
  size_t cold_picks = 0;
  for (int t = 0; t < horizon; ++t) {
    auto task = generator.SampleTask(12, &rng);
    CS_CHECK(task.ok());
    auto projected = selector.ProjectTask(task->bag);
    CS_CHECK(projected.ok());

    std::vector<WorkerId> candidates(posteriors.size());
    for (size_t i = 0; i < candidates.size(); ++i) {
      candidates[i] = static_cast<WorkerId>(i);
    }
    const auto picked =
        ranker.SelectTopK(posteriors, projected->category, 1, candidates);
    const WorkerId choice = picked[0].worker;
    if (choice % 2 == 0) ++cold_picks;

    // True outcome + regret.
    const Vector proportions = task->categories.Softmax();
    double best = -1e300;
    for (const auto& skills : dataset->world.draw.worker_skills) {
      best = std::max(best, skills.Dot(proportions));
    }
    const double realized =
        dataset->world.draw.worker_skills[choice].Dot(proportions);
    const double regret = best - realized;
    outcome.cumulative_regret += regret;
    if (t < horizon / 2) {
      outcome.early_regret_per_task += regret / (horizon / 2);
    } else {
      outcome.late_regret_per_task += regret / (horizon / 2);
    }

    // Online skill update from the realized (noisy, truncated) feedback.
    const double feedback =
        std::max(0.0, std::round(realized + rng.Normal(0.0, 0.5)));
    SkillObservation obs;
    obs.category_mean = projected->lambda;
    obs.category_var = projected->nu_sq;
    obs.score = feedback;
    updater->Observe(obs, &states[choice]);
    if (choice % 2 == 0) {
      // Cold workers: posterior entirely from online evidence.
      auto refreshed = updater->Posterior(states[choice]);
      CS_CHECK(refreshed.ok());
      posteriors[choice] = std::move(refreshed).value();
    }
  }
  outcome.cold_worker_selection_rate =
      static_cast<double>(cold_picks) / horizon;
  return outcome;
}

}  // namespace

int main() {
  TableReporter table(
      "Ablation A5: exploration policies on a cold-start worker pool "
      "(800-task horizon; the strongest half of the pool has no history)");
  table.SetHeader({"Policy", "Cumulative regret", "Regret/task (early)",
                   "Regret/task (late)", "Cold-worker pick rate"});
  const PolicyOutcome greedy = RunPolicy(ExplorationPolicy::kGreedy, 0.0);
  const PolicyOutcome ucb = RunPolicy(ExplorationPolicy::kUcb, 4.0);
  const PolicyOutcome thompson = RunPolicy(ExplorationPolicy::kThompson, 0.0);
  auto add = [&](const char* name, const PolicyOutcome& o) {
    table.AddRow({name, TableReporter::Cell(o.cumulative_regret, 1),
                  TableReporter::Cell(o.early_regret_per_task, 2),
                  TableReporter::Cell(o.late_regret_per_task, 2),
                  TableReporter::Cell(o.cold_worker_selection_rate)});
  };
  add("Greedy (paper Eq. 1)", greedy);
  add("UCB (beta=4)", ucb);
  add("Thompson", thompson);
  table.Print(std::cout);
  return 0;
}
