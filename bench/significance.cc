// Statistical significance of the headline comparison: bootstrap
// confidence intervals for each algorithm's ACCU and the paired-bootstrap
// probability that TDPM beats each baseline on the same test questions.
// (The paper reports point estimates only; this bench quantifies how much
// of the margin survives test-question sampling noise.)
#include <algorithm>
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace crowdselect;
using namespace crowdselect::bench;

namespace {

// Evaluates one selector on the split, returning per-case rank samples.
Result<std::vector<RankSample>> Evaluate(const EvalSplit& split,
                                         CrowdSelector* selector) {
  CS_RETURN_NOT_OK(selector->Train(split.train_db));
  std::vector<RankSample> samples;
  samples.reserve(split.cases.size());
  for (const EvalCase& c : split.cases) {
    CS_ASSIGN_OR_RETURN(const TaskRecord* task,
                        split.train_db.GetTask(c.task));
    CS_ASSIGN_OR_RETURN(
        std::vector<RankedWorker> ranking,
        selector->SelectTopK(task->bag, c.candidates.size(), c.candidates));
    const auto it = std::find_if(
        ranking.begin(), ranking.end(),
        [&](const RankedWorker& r) { return r.worker == c.right_worker; });
    samples.push_back({static_cast<size_t>(it - ranking.begin()),
                       ranking.size()});
  }
  return samples;
}

}  // namespace

int main() {
  TableReporter table(
      "Significance: 95% bootstrap CIs for ACCU and P(TDPM > baseline), "
      "paired on identical test questions (K=" +
      std::to_string(kDefaultCategories) + ", group threshold 1)");
  table.SetHeader({"Dataset", "Algorithm", "ACCU [95% CI]",
                   "P(TDPM beats it)"});
  for (Platform platform : {Platform::kQuora, Platform::kYahooAnswer,
                            Platform::kStackOverflow}) {
    const SyntheticDataset& dataset = GetDataset(platform);
    PrintScaleNote(dataset);
    const WorkerGroup group = MakeGroup(dataset.db, 1, GroupPrefix(platform));
    SplitOptions split_options;
    split_options.num_test_tasks = NumTestQuestions(platform);
    split_options.min_candidates = 3;
    auto split = MakeSplit(dataset, group, split_options);
    CS_CHECK(split.ok()) << split.status().ToString();

    // Evaluate all four algorithms on the same cases.
    std::vector<std::vector<RankSample>> samples;
    std::vector<std::string> names;
    for (auto& factory :
         StandardSelectorFactories(kDefaultCategories, /*seed=*/97)) {
      auto selector = factory();
      names.push_back(selector->Name());
      auto s = Evaluate(*split, selector.get());
      CS_CHECK(s.ok()) << s.status().ToString();
      samples.push_back(std::move(s).value());
    }
    const std::vector<RankSample>& tdpm = samples.back();

    for (size_t a = 0; a < samples.size(); ++a) {
      auto ci = BootstrapAccu(samples[a]);
      CS_CHECK(ci.ok());
      std::string superiority = "-";
      if (names[a] != "TDPM") {
        auto p = PairedBootstrapAccuSuperiority(tdpm, samples[a]);
        CS_CHECK(p.ok());
        superiority = TableReporter::Cell(*p);
      }
      table.AddRow({PlatformName(platform), names[a],
                    TableReporter::Cell(ci->mean) + " [" +
                        TableReporter::Cell(ci->lo) + ", " +
                        TableReporter::Cell(ci->hi) + "]",
                    superiority});
    }
  }
  table.Print(std::cout);
  return 0;
}
