// Ablation A2 (DESIGN.md): full covariance priors (the paper's general
// form, section 4.3.1) vs the "special way" diagonal restriction. Reports
// quality and training time side by side.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace crowdselect;
using namespace crowdselect::bench;

namespace {

AlgorithmResult EvaluateTdpm(const EvalSplit& split, bool diagonal) {
  TdpmOptions options;
  options.num_categories = kDefaultCategories;
  options.seed = 97;
  options.max_em_iterations = 30;
  options.num_threads = 0;
  options.diagonal_covariance = diagonal;
  std::vector<SelectorFactory> factory = {
      [&options] { return std::make_unique<TdpmSelector>(options); }};
  auto results = RunExperiment(split, factory);
  CS_CHECK(results.ok()) << results.status().ToString();
  return (*results)[0];
}

}  // namespace

int main() {
  TableReporter table(
      "Ablation A2: full Sigma_w/Sigma_c vs diagonal restriction (TDPM, "
      "K=" + std::to_string(kDefaultCategories) + ")");
  table.SetHeader({"Dataset", "ACCU (full)", "ACCU (diag)", "Top1 (full)",
                   "Top1 (diag)", "Train s (full)", "Train s (diag)"});
  for (Platform platform : {Platform::kQuora, Platform::kYahooAnswer,
                            Platform::kStackOverflow}) {
    const SyntheticDataset& dataset = GetDataset(platform);
    PrintScaleNote(dataset);
    const WorkerGroup group = MakeGroup(dataset.db, 1, GroupPrefix(platform));
    SplitOptions split_options;
    split_options.num_test_tasks = NumTestQuestions(platform);
    split_options.min_candidates = 3;
    auto split = MakeSplit(dataset, group, split_options);
    CS_CHECK(split.ok()) << split.status().ToString();
    const AlgorithmResult full = EvaluateTdpm(*split, false);
    const AlgorithmResult diag = EvaluateTdpm(*split, true);
    table.AddRow({PlatformName(platform), TableReporter::Cell(full.mean_accu),
                  TableReporter::Cell(diag.mean_accu),
                  TableReporter::Cell(full.top1),
                  TableReporter::Cell(diag.top1),
                  TableReporter::Cell(full.train_seconds, 2),
                  TableReporter::Cell(diag.train_seconds, 2)});
  }
  table.Print(std::cout);
  return 0;
}
