// Reproduces paper Figure 5: task coverage and group size of the crowd in
// the kYahooAnswer dataset as the participation threshold varies.
#include "common/table_runner.h"

int main() {
  return crowdselect::bench::RunCrowdStatsFigure(
      crowdselect::Platform::kYahooAnswer, "Figure 5");
}
