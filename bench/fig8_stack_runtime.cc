// Reproduces paper Figure 8: per-question Top1/Top2 crowd-selection
// running time of each algorithm across worker groups.
#include "common/runtime_figure.h"

int main(int argc, char** argv) {
  return crowdselect::bench::RunRuntimeFigure(
      crowdselect::Platform::kStackOverflow, "Figure 8", argc, argv);
}
