// Reproduces paper Figure 4: per-question Top1/Top2 crowd-selection
// running time of each algorithm across worker groups.
#include "common/runtime_figure.h"

int main(int argc, char** argv) {
  return crowdselect::bench::RunRuntimeFigure(
      crowdselect::Platform::kQuora, "Figure 4", argc, argv);
}
