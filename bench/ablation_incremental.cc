// Ablation A3 (DESIGN.md): the incremental crowd-selection claim
// (paper section 1 and Algorithm 3). For a stream of newly arriving tasks,
// compares (a) fold-in projection against (b) full batch re-inference that
// includes the new tasks: selection agreement, category agreement and the
// wall-clock speedup that motivates the incremental algorithm.
#include <cmath>
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"
#include "util/timer.h"

using namespace crowdselect;
using namespace crowdselect::bench;

namespace {

double Correlation(const std::vector<double>& a, const std::vector<double>& b) {
  double ma = 0, mb = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    ma += a[i];
    mb += b[i];
  }
  ma /= static_cast<double>(a.size());
  mb /= static_cast<double>(b.size());
  double sa = 0, sb = 0, sab = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    sa += (a[i] - ma) * (a[i] - ma);
    sb += (b[i] - mb) * (b[i] - mb);
    sab += (a[i] - ma) * (b[i] - mb);
  }
  return sab / std::sqrt(sa * sb + 1e-300);
}

}  // namespace

int main() {
  const Platform platform = Platform::kQuora;
  const SyntheticDataset& dataset = GetDataset(platform);
  PrintScaleNote(dataset);

  // Hide the last `arrivals` resolved tasks: they are the "newly coming"
  // stream.
  const size_t arrivals = 50;
  const WorkerGroup group = MakeGroup(dataset.db, 1, GroupPrefix(platform));
  SplitOptions split_options;
  split_options.num_test_tasks = arrivals;
  split_options.min_candidates = 3;
  auto split = MakeSplit(dataset, group, split_options);
  CS_CHECK(split.ok()) << split.status().ToString();

  TdpmOptions options;
  options.num_categories = kDefaultCategories;
  options.seed = 97;
  options.max_em_iterations = 30;
  options.num_threads = 0;

  // Base model trained without the arrivals.
  TdpmSelector base(options);
  Timer train_timer;
  CS_CHECK_OK(base.Train(split->train_db));
  const double base_train_s = train_timer.ElapsedSeconds();

  // (a) Incremental: fold each arrival in.
  std::vector<FoldInResult> folded;
  Timer fold_timer;
  for (const auto& c : split->cases) {
    auto f = base.ProjectTask(split->train_db.GetTask(c.task).value()->bag);
    CS_CHECK(f.ok());
    folded.push_back(std::move(f).value());
  }
  const double fold_total_s = fold_timer.ElapsedSeconds();

  // (b) Batch: re-train with the arrivals' feedback restored.
  CrowdDatabase full_db;
  *full_db.mutable_vocabulary() = dataset.db.vocabulary();
  for (const auto& w : dataset.db.workers()) full_db.AddWorker(w.handle, w.online);
  for (const auto& t : dataset.db.tasks()) full_db.AddTaskWithBag(t.text, t.bag);
  for (const auto& a : dataset.db.assignments()) {
    CS_CHECK_OK(full_db.Assign(a.worker, a.task));
    if (a.has_score) CS_CHECK_OK(full_db.RecordFeedback(a.worker, a.task, a.score));
  }
  TdpmSelector batch(options);
  Timer batch_timer;
  CS_CHECK_OK(batch.Train(full_db));
  const double batch_train_s = batch_timer.ElapsedSeconds();

  // Compare: top-1 selection agreement and score correlation over the
  // arrivals, candidates = each task's answerers.
  size_t top1_agreements = 0;
  std::vector<double> inc_scores, batch_scores;
  for (size_t i = 0; i < split->cases.size(); ++i) {
    const auto& c = split->cases[i];
    auto batch_fold =
        batch.ProjectTask(full_db.GetTask(c.task).value()->bag);
    CS_CHECK(batch_fold.ok());
    WorkerId inc_best = kInvalidWorkerId, batch_best = kInvalidWorkerId;
    double inc_best_score = -1e300, batch_best_score = -1e300;
    for (WorkerId w : c.candidates) {
      const double si = base.WorkerSkills(w).Dot(folded[i].category);
      const double sb = batch.WorkerSkills(w).Dot(batch_fold->category);
      inc_scores.push_back(si);
      batch_scores.push_back(sb);
      if (si > inc_best_score) {
        inc_best_score = si;
        inc_best = w;
      }
      if (sb > batch_best_score) {
        batch_best_score = sb;
        batch_best = w;
      }
    }
    if (inc_best == batch_best) ++top1_agreements;
  }

  TableReporter table("Ablation A3: incremental fold-in vs batch re-inference "
                      "(Quora, " + std::to_string(arrivals) + " arriving tasks)");
  table.SetHeader({"Metric", "Value"});
  table.AddRow({"Base training time (s)", TableReporter::Cell(base_train_s, 2)});
  table.AddRow({"Batch re-train time (s)", TableReporter::Cell(batch_train_s, 2)});
  table.AddRow({"Fold-in time, all arrivals (s)",
                TableReporter::Cell(fold_total_s, 4)});
  table.AddRow({"Fold-in time per task (ms)",
                TableReporter::Cell(1e3 * fold_total_s / arrivals, 3)});
  table.AddRow({"Speedup (batch retrain / per-task fold-in)",
                TableReporter::Cell(batch_train_s / (fold_total_s / arrivals), 0)});
  table.AddRow({"Top-1 selection agreement",
                TableReporter::Cell(
                    static_cast<double>(top1_agreements) / arrivals)});
  table.AddRow({"Selection-score correlation",
                TableReporter::Cell(Correlation(inc_scores, batch_scores))});
  table.Print(std::cout);
  return 0;
}
