// Ablation A4 (DESIGN.md): the comparability claim from paper section 1.
// Plants a world where one worker is absolutely stronger on category A but
// spends most of their activity on category B (the "w_j is better on CS
// while solving more Math tasks" scenario). Multinomial skill models
// (DRM/TSPM) normalize activity shares and pick the wrong worker; TDPM's
// unnormalized skills should pick the right one.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace crowdselect;
using namespace crowdselect::bench;

namespace {

// Builds the planted scenario. Vocabulary: terms [0,20) = "cs" slice,
// [20,40) = "math" slice.
//  - strong_cs ("w_j"): answers 4 CS tasks earning 8 each, and 12 math
//    tasks earning 2 each. Absolutely best at CS, but 75% of activity
//    (and feedback mass) is math.
//  - weak_cs ("w_i"): answers 12 CS tasks earning 5 each, 2 math tasks
//    earning 1. Mostly CS by share, but weaker at CS in absolute terms.
//  - filler workers give the topic models enough signal.
CrowdDatabase PlantScenario(Rng* rng) {
  CrowdDatabase db;
  Vocabulary* vocab = db.mutable_vocabulary();
  for (int v = 0; v < 40; ++v) {
    vocab->Intern((v < 20 ? "cs" : "math") + std::to_string(v));
  }
  const WorkerId weak_cs = db.AddWorker("w_i_weak_cs_mostly_cs");
  const WorkerId strong_cs = db.AddWorker("w_j_strong_cs_mostly_math");
  const WorkerId filler1 = db.AddWorker("filler_cs");
  const WorkerId filler2 = db.AddWorker("filler_math");

  auto add_task = [&](bool cs) {
    BagOfWords bag;
    for (int p = 0; p < 10; ++p) {
      bag.Add(static_cast<TermId>((cs ? 0 : 20) + rng->UniformInt(20)));
    }
    std::string text = cs ? "cs task" : "math task";
    return db.AddTaskWithBag(std::move(text), std::move(bag));
  };
  auto answer = [&](WorkerId w, TaskId t, double score) {
    CS_CHECK_OK(db.Assign(w, t));
    CS_CHECK_OK(db.RecordFeedback(w, t, score));
  };

  // strong_cs: few CS tasks, high scores; many math tasks, low scores.
  for (int i = 0; i < 4; ++i) {
    const TaskId t = add_task(true);
    answer(strong_cs, t, 8.0 + rng->Normal(0.0, 0.2));
    answer(filler1, t, 3.0 + rng->Normal(0.0, 0.2));
  }
  for (int i = 0; i < 12; ++i) {
    const TaskId t = add_task(false);
    answer(strong_cs, t, 2.0 + rng->Normal(0.0, 0.2));
    answer(filler2, t, 4.0 + rng->Normal(0.0, 0.2));
  }
  // weak_cs: many CS tasks, medium scores; few math tasks.
  for (int i = 0; i < 12; ++i) {
    const TaskId t = add_task(true);
    answer(weak_cs, t, 5.0 + rng->Normal(0.0, 0.2));
    answer(filler1, t, 3.0 + rng->Normal(0.0, 0.2));
  }
  for (int i = 0; i < 2; ++i) {
    const TaskId t = add_task(false);
    answer(weak_cs, t, 1.0 + rng->Normal(0.0, 0.2));
    answer(filler2, t, 4.0 + rng->Normal(0.0, 0.2));
  }
  return db;
}

}  // namespace

int main() {
  const int trials = 20;
  int tdpm_right = 0, drm_right = 0, tspm_right = 0;
  Rng rng(2024);
  for (int trial = 0; trial < trials; ++trial) {
    CrowdDatabase db = PlantScenario(&rng);

    // The probe: a pure-CS task. The right pick is worker 1 (strong CS).
    BagOfWords cs_probe;
    for (int p = 0; p < 10; ++p) cs_probe.Add(static_cast<TermId>(p));
    const std::vector<WorkerId> candidates = {0, 1};

    TdpmOptions tdpm_options;
    tdpm_options.num_categories = 2;
    tdpm_options.seed = 7 + trial;
    tdpm_options.max_em_iterations = 25;
    TdpmSelector tdpm(tdpm_options);
    CS_CHECK_OK(tdpm.Train(db));
    auto tdpm_top = tdpm.SelectTopK(cs_probe, 1, candidates);
    CS_CHECK(tdpm_top.ok());
    tdpm_right += (*tdpm_top)[0].worker == 1 ? 1 : 0;

    DrmOptions drm_options;
    drm_options.plsa.num_topics = 2;
    drm_options.plsa.seed = 7 + trial;
    DrmSelector drm(drm_options);
    CS_CHECK_OK(drm.Train(db));
    auto drm_top = drm.SelectTopK(cs_probe, 1, candidates);
    CS_CHECK(drm_top.ok());
    drm_right += (*drm_top)[0].worker == 1 ? 1 : 0;

    TspmOptions tspm_options;
    tspm_options.lda.num_topics = 2;
    tspm_options.lda.seed = 7 + trial;
    TspmSelector tspm(tspm_options);
    CS_CHECK_OK(tspm.Train(db));
    auto tspm_top = tspm.SelectTopK(cs_probe, 1, candidates);
    CS_CHECK(tspm_top.ok());
    tspm_right += (*tspm_top)[0].worker == 1 ? 1 : 0;
  }

  TableReporter table(
      "Ablation A4: section-1 comparability scenario - fraction of trials "
      "selecting the absolutely-stronger CS worker for a CS task");
  table.SetHeader({"Model", "Skill normalization", "Correct selections"});
  table.AddRow({"TDPM", "unnormalized (Gaussian)",
                TableReporter::Cell(static_cast<double>(tdpm_right) / trials, 2)});
  table.AddRow({"DRM", "multinomial (sums to 1)",
                TableReporter::Cell(static_cast<double>(drm_right) / trials, 2)});
  table.AddRow({"TSPM", "multinomial (sums to 1)",
                TableReporter::Cell(static_cast<double>(tspm_right) / trials, 2)});
  table.Print(std::cout);
  return 0;
}
