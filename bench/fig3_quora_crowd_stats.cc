// Reproduces paper Figure 3: task coverage and group size of the crowd in
// the kQuora dataset as the participation threshold varies.
#include "common/table_runner.h"

int main() {
  return crowdselect::bench::RunCrowdStatsFigure(
      crowdselect::Platform::kQuora, "Figure 3");
}
