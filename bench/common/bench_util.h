// Shared plumbing for the benchmark harness: per-platform dataset caching,
// the paper's group threshold ladders, and the precision/recall cell
// runner used by every table reproduction.
#ifndef CROWDSELECT_BENCH_COMMON_BENCH_UTIL_H_
#define CROWDSELECT_BENCH_COMMON_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "crowdselect/crowdselect.h"

namespace crowdselect::bench {

/// Process-wide dataset cache so each bench binary generates each platform
/// exactly once (deterministic seed per platform).
const SyntheticDataset& GetDataset(Platform platform);

/// The participation thresholds evaluated in the paper's tables/figures.
/// Quora: 1..9; Yahoo: 1,5,10,15,20,25,30; Stack: 1,3,6,9,12,15.
std::vector<size_t> PaperThresholds(Platform platform);

/// Thresholds used by the precision tables (three groups per dataset):
/// Quora 1/5/9, Yahoo 10/15/20, Stack 1/6/12.
std::vector<size_t> PrecisionThresholds(Platform platform);

/// Thresholds used by the recall tables (five groups per dataset):
/// Quora 1..5, Yahoo 10..30 step 5, Stack 1,3,6,9,12.
std::vector<size_t> RecallThresholds(Platform platform);

/// Group-name prefix ("Quora", "Yahoo", "Stack").
std::string GroupPrefix(Platform platform);

/// Latent-category sweep of the precision tables.
inline const std::vector<size_t> kCategorySweep = {10, 20, 30, 40, 50};
/// Fixed category count used by the recall tables and runtime figures.
inline constexpr size_t kDefaultCategories = 30;

/// Test questions per cell. The paper uses 10k (Quora/Yahoo) and 1k
/// (Stack); we scale to the synthetic dataset size.
size_t NumTestQuestions(Platform platform);

/// One (group, K) evaluation of all four algorithms.
struct CellResult {
  std::string group;
  size_t k = 0;
  std::vector<AlgorithmResult> algorithms;  // VSM, TSPM, DRM, TDPM.
};

/// Builds the split for a group and runs the standard selector set.
Result<CellResult> RunCell(const SyntheticDataset& dataset, size_t threshold,
                           size_t k, size_t num_test);

/// Prints the note line every bench emits about scale substitution.
void PrintScaleNote(const SyntheticDataset& dataset);

/// Writes the global observability snapshot (obs::StatsReporter JSON) to
/// `<bench_name>.stats.json` under $CROWDSELECT_STATS_DIR (default ".").
/// Every bench driver calls this after printing its table so runs into
/// bench_results/ carry per-phase EM/selection timing breakdowns.
void DumpStatsSnapshot(const std::string& bench_name);

}  // namespace crowdselect::bench

#endif  // CROWDSELECT_BENCH_COMMON_BENCH_UTIL_H_
