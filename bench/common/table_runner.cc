#include "common/table_runner.h"

#include <cstdio>
#include <iostream>
#include <map>

namespace crowdselect::bench {

namespace {

const std::vector<std::string> kAlgorithmOrder = {"VSM", "TSPM", "DRM",
                                                  "TDPM"};

std::map<std::string, AlgorithmResult> ByName(const CellResult& cell) {
  std::map<std::string, AlgorithmResult> out;
  for (const auto& a : cell.algorithms) out[a.name] = a;
  return out;
}

}  // namespace

int RunPrecisionTable(Platform platform, const std::string& table_name) {
  const SyntheticDataset& dataset = GetDataset(platform);
  PrintScaleNote(dataset);
  const auto thresholds = PrecisionThresholds(platform);
  const size_t num_test = NumTestQuestions(platform);

  // header: Algorithm | <group1> K=10..50 | <group2> ... like the paper.
  TableReporter table(table_name + ": Precision (ACCU) of Crowd-Selection "
                      "Algorithms in " + PlatformName(platform));
  std::vector<std::string> header = {"Algorithm/Category"};
  for (size_t t : thresholds) {
    for (size_t k : kCategorySweep) {
      header.push_back(GroupPrefix(platform) + std::to_string(t) + " K=" +
                       std::to_string(k));
    }
  }
  table.SetHeader(header);

  // cell results keyed by (threshold, K).
  std::map<std::pair<size_t, size_t>, std::map<std::string, AlgorithmResult>>
      cells;
  for (size_t t : thresholds) {
    for (size_t k : kCategorySweep) {
      auto cell = RunCell(dataset, t, k, num_test);
      if (!cell.ok()) {
        std::fprintf(stderr, "cell (t=%zu, K=%zu) failed: %s\n", t, k,
                     cell.status().ToString().c_str());
        return 1;
      }
      cells[{t, k}] = ByName(*cell);
      std::fprintf(stderr, "  [done] %s%zu K=%zu\n",
                   GroupPrefix(platform).c_str(), t, k);
    }
  }
  for (const auto& algo : kAlgorithmOrder) {
    std::vector<std::string> row = {algo};
    for (size_t t : thresholds) {
      for (size_t k : kCategorySweep) {
        row.push_back(TableReporter::Cell(cells[{t, k}][algo].mean_accu));
      }
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  DumpStatsSnapshot(table_name);
  return 0;
}

int RunRecallTable(Platform platform, const std::string& table_name) {
  const SyntheticDataset& dataset = GetDataset(platform);
  PrintScaleNote(dataset);
  const auto thresholds = RecallThresholds(platform);
  const size_t num_test = NumTestQuestions(platform);

  TableReporter table(table_name + ": Recall (TopK) of Crowd-Selection "
                      "Algorithms in " + PlatformName(platform) +
                      " (K=" + std::to_string(kDefaultCategories) + ")");
  std::vector<std::string> header = {"Algorithm/TopK"};
  for (size_t t : thresholds) {
    header.push_back(GroupPrefix(platform) + std::to_string(t) + " Top1");
    header.push_back(GroupPrefix(platform) + std::to_string(t) + " Top2");
  }
  table.SetHeader(header);

  std::map<size_t, std::map<std::string, AlgorithmResult>> cells;
  for (size_t t : thresholds) {
    auto cell = RunCell(dataset, t, kDefaultCategories, num_test);
    if (!cell.ok()) {
      std::fprintf(stderr, "cell (t=%zu) failed: %s\n", t,
                   cell.status().ToString().c_str());
      return 1;
    }
    cells[t] = ByName(*cell);
    std::fprintf(stderr, "  [done] %s%zu\n", GroupPrefix(platform).c_str(), t);
  }
  for (const auto& algo : kAlgorithmOrder) {
    std::vector<std::string> row = {algo};
    for (size_t t : thresholds) {
      row.push_back(TableReporter::Cell(cells[t][algo].top1));
      row.push_back(TableReporter::Cell(cells[t][algo].top2));
    }
    table.AddRow(row);
  }
  table.Print(std::cout);
  DumpStatsSnapshot(table_name);
  return 0;
}

int RunCrowdStatsFigure(Platform platform, const std::string& figure_name) {
  const SyntheticDataset& dataset = GetDataset(platform);
  PrintScaleNote(dataset);
  TableReporter table(figure_name + ": Statistics of the Crowd in " +
                      std::string(PlatformName(platform)) +
                      " (task coverage + group size vs participation)");
  table.SetHeader({"Group", "Threshold", "NumWorkers", "TaskCoverage"});
  for (size_t t : PaperThresholds(platform)) {
    const WorkerGroup group =
        MakeGroup(dataset.db, t, GroupPrefix(platform));
    const double coverage = GroupTaskCoverage(dataset.db, group);
    table.AddRow({group.name, std::to_string(t),
                  std::to_string(group.members.size()),
                  TableReporter::Cell(coverage)});
  }
  table.Print(std::cout);
  return 0;
}

}  // namespace crowdselect::bench
