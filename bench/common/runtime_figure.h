// Driver for the running-time figures (paper Figs. 4/6/8): per-question
// Top1/Top2 crowd-selection latency of each algorithm across the paper's
// worker groups, measured with google-benchmark.
#ifndef CROWDSELECT_BENCH_COMMON_RUNTIME_FIGURE_H_
#define CROWDSELECT_BENCH_COMMON_RUNTIME_FIGURE_H_

#include <string>

#include "common/bench_util.h"

namespace crowdselect::bench {

/// Trains all four selectors per group, registers one benchmark per
/// (group, algorithm, k in {1,2}) and runs google-benchmark.
int RunRuntimeFigure(Platform platform, const std::string& figure_name,
                     int argc, char** argv);

}  // namespace crowdselect::bench

#endif  // CROWDSELECT_BENCH_COMMON_RUNTIME_FIGURE_H_
