#include "common/runtime_figure.h"

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>

namespace crowdselect::bench {

namespace {

/// A trained algorithm plus the test workload of one group.
struct GroupFixture {
  std::string group_name;
  std::shared_ptr<EvalSplit> split;
  std::vector<std::shared_ptr<CrowdSelector>> selectors;
};

void SelectionLoop(benchmark::State& state, const GroupFixture& fixture,
                   size_t algo, size_t top_k) {
  const CrowdSelector& selector = *fixture.selectors[algo];
  const auto& cases = fixture.split->cases;
  size_t case_index = 0;
  for (auto _ : state) {
    const EvalCase& c = cases[case_index];
    case_index = (case_index + 1) % cases.size();
    const TaskRecord* task = fixture.split->train_db.GetTask(c.task).value();
    auto result = selector.SelectTopK(task->bag, top_k, c.candidates);
    CS_CHECK(result.ok());
    benchmark::DoNotOptimize(result.value());
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()));
}

}  // namespace

int RunRuntimeFigure(Platform platform, const std::string& figure_name,
                     int argc, char** argv) {
  const SyntheticDataset& dataset = GetDataset(platform);
  std::printf("# %s: Running Time of Crowd-Selection Algorithms in %s\n",
              figure_name.c_str(), PlatformName(dataset.platform));
  PrintScaleNote(dataset);

  std::vector<GroupFixture> fixtures;
  for (size_t t : RecallThresholds(platform)) {
    const WorkerGroup group =
        MakeGroup(dataset.db, t, GroupPrefix(platform));
    SplitOptions split_options;
    split_options.num_test_tasks = NumTestQuestions(platform);
    split_options.min_candidates = 3;
    split_options.seed = 0xF1D0 + t;
    auto split = MakeSplit(dataset, group, split_options);
    if (!split.ok()) {
      std::fprintf(stderr, "split for threshold %zu failed: %s\n", t,
                   split.status().ToString().c_str());
      return 1;
    }
    GroupFixture fixture;
    fixture.group_name = group.name;
    fixture.split = std::make_shared<EvalSplit>(std::move(split).value());
    double train_seconds = 0.0;
    {
      ScopedTimer train_timer(&train_seconds);
      for (auto& factory :
           StandardSelectorFactories(kDefaultCategories, /*seed=*/97)) {
        std::shared_ptr<CrowdSelector> selector = factory();
        const Status st = selector->Train(fixture.split->train_db);
        CS_CHECK(st.ok()) << st.ToString();
        fixture.selectors.push_back(std::move(selector));
      }
    }
    std::fprintf(stderr, "  [trained] %s (%zu test questions, %.2fs)\n",
                 fixture.group_name.c_str(), fixture.split->cases.size(),
                 train_seconds);
    fixtures.push_back(std::move(fixture));
  }

  for (const auto& fixture : fixtures) {
    for (size_t algo = 0; algo < fixture.selectors.size(); ++algo) {
      for (size_t top_k : {1, 2}) {
        const std::string name = fixture.selectors[algo]->Name() + "/" +
                                 fixture.group_name + "/Top" +
                                 std::to_string(top_k);
        benchmark::RegisterBenchmark(
            name.c_str(),
            [&fixture, algo, top_k](benchmark::State& state) {
              SelectionLoop(state, fixture, algo, top_k);
            })
            ->Unit(benchmark::kMicrosecond);
      }
    }
  }

  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  DumpStatsSnapshot(figure_name);
  return 0;
}

}  // namespace crowdselect::bench
