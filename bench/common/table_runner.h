// Drivers shared by the table-reproduction benches: each bench binary is a
// thin main() that names its platform and paper table/figure.
#ifndef CROWDSELECT_BENCH_COMMON_TABLE_RUNNER_H_
#define CROWDSELECT_BENCH_COMMON_TABLE_RUNNER_H_

#include <string>

#include "common/bench_util.h"

namespace crowdselect::bench {

/// Reproduces a precision table (paper Tables 3/5/7): ACCU for
/// VSM/TSPM/DRM/TDPM over three groups x K in {10..50}.
int RunPrecisionTable(Platform platform, const std::string& table_name);

/// Reproduces a recall table (paper Tables 4/6/8): Top1/Top2 for the four
/// algorithms over five groups at the default K.
int RunRecallTable(Platform platform, const std::string& table_name);

/// Reproduces a crowd-statistics figure (paper Figs. 3/5/7): task
/// coverage and group size per participation threshold.
int RunCrowdStatsFigure(Platform platform, const std::string& figure_name);

}  // namespace crowdselect::bench

#endif  // CROWDSELECT_BENCH_COMMON_TABLE_RUNNER_H_
