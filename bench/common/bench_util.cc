#include "common/bench_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <string>

namespace crowdselect::bench {

const SyntheticDataset& GetDataset(Platform platform) {
  static std::mutex mu;
  static std::map<Platform, SyntheticDataset> cache;
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache.find(platform);
  if (it == cache.end()) {
    const uint64_t seed = 0xEDB7 + static_cast<uint64_t>(platform);
    auto dataset = GeneratePlatformDataset(platform, seed);
    CS_CHECK(dataset.ok()) << dataset.status().ToString();
    it = cache.emplace(platform, std::move(dataset).value()).first;
  }
  return it->second;
}

std::vector<size_t> PaperThresholds(Platform platform) {
  switch (platform) {
    case Platform::kQuora:
      return {1, 2, 3, 4, 5, 6, 7, 8, 9};
    case Platform::kYahooAnswer:
      return {1, 5, 10, 15, 20, 25, 30};
    case Platform::kStackOverflow:
      return {1, 3, 6, 9, 12, 15};
  }
  return {};
}

std::vector<size_t> PrecisionThresholds(Platform platform) {
  switch (platform) {
    case Platform::kQuora:
      return {1, 5, 9};
    case Platform::kYahooAnswer:
      return {10, 15, 20};
    case Platform::kStackOverflow:
      return {1, 6, 12};
  }
  return {};
}

std::vector<size_t> RecallThresholds(Platform platform) {
  switch (platform) {
    case Platform::kQuora:
      return {1, 2, 3, 4, 5};
    case Platform::kYahooAnswer:
      return {10, 15, 20, 25, 30};
    case Platform::kStackOverflow:
      return {1, 3, 6, 9, 12};
  }
  return {};
}

std::string GroupPrefix(Platform platform) {
  switch (platform) {
    case Platform::kQuora:
      return "Quora";
    case Platform::kYahooAnswer:
      return "Yahoo";
    case Platform::kStackOverflow:
      return "Stack";
  }
  return "?";
}

size_t NumTestQuestions(Platform platform) {
  // Paper: 10k test questions for Quora/Yahoo, 1k for Stack Overflow,
  // scaled by the same factor as the datasets themselves.
  switch (platform) {
    case Platform::kQuora:
      return 150;
    case Platform::kYahooAnswer:
      return 150;
    case Platform::kStackOverflow:
      return 100;
  }
  return 100;
}

Result<CellResult> RunCell(const SyntheticDataset& dataset, size_t threshold,
                           size_t k, size_t num_test) {
  const WorkerGroup group =
      MakeGroup(dataset.db, threshold, GroupPrefix(dataset.platform));
  SplitOptions split_options;
  split_options.num_test_tasks = num_test;
  split_options.min_candidates = 3;
  split_options.seed = 0xBEEF + threshold * 131 + k;
  CS_ASSIGN_OR_RETURN(EvalSplit split, MakeSplit(dataset, group, split_options));
  CS_ASSIGN_OR_RETURN(
      std::vector<AlgorithmResult> algorithms,
      RunExperiment(split, StandardSelectorFactories(k, /*seed=*/97)));
  CellResult cell;
  cell.group = group.name;
  cell.k = k;
  cell.algorithms = std::move(algorithms);
  return cell;
}

void DumpStatsSnapshot(const std::string& bench_name) {
  std::string slug;
  for (char c : bench_name) {
    slug += (std::isalnum(static_cast<unsigned char>(c)) != 0)
                ? static_cast<char>(std::tolower(static_cast<unsigned char>(c)))
                : '_';
  }
  const char* dir = std::getenv("CROWDSELECT_STATS_DIR");
  const std::string path =
      std::string(dir != nullptr && *dir != '\0' ? dir : ".") + "/" + slug +
      ".stats.json";
  const Status st = obs::StatsReporter().WriteJsonFile(path);
  if (!st.ok()) {
    std::fprintf(stderr, "stats snapshot not written: %s\n",
                 st.ToString().c_str());
    return;
  }
  std::fprintf(stderr, "  [stats] %s\n", path.c_str());
}

void PrintScaleNote(const SyntheticDataset& dataset) {
  std::printf(
      "# %s synthetic dataset: %zu workers, %zu tasks, %zu answers "
      "(~1/%.0f of the paper's crawl; see DESIGN.md section 3)\n",
      PlatformName(dataset.platform), dataset.db.NumWorkers(),
      dataset.db.NumTasks(), dataset.db.NumAssignments(),
      dataset.config.scale_factor);
}

}  // namespace crowdselect::bench
