// Reproduces paper Table 2: Statistics of Real Datasets (questions, users,
// answers), reported for the synthetic stand-ins alongside the paper's
// crawl sizes and the scale factor (DESIGN.md section 3).
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace crowdselect;
using namespace crowdselect::bench;

int main() {
  struct PaperRow {
    Platform platform;
    long long questions, users, answers;
  };
  const PaperRow paper[] = {
      {Platform::kQuora, 444000, 95000, 887000},
      {Platform::kYahooAnswer, 8866000, 1004000, 26903000},
      {Platform::kStackOverflow, 83000, 15000, 236000},
  };

  TableReporter table("Table 2: Statistics of Datasets (synthetic vs paper crawl)");
  table.SetHeader({"Dataset", "Questions", "Users", "Answers",
                   "Paper Questions", "Paper Users", "Paper Answers",
                   "Answers/Question (ours vs paper)"});
  for (const auto& row : paper) {
    const SyntheticDataset& dataset = GetDataset(row.platform);
    const double ours_apq =
        static_cast<double>(dataset.db.NumAssignments()) /
        static_cast<double>(dataset.db.NumTasks());
    const double paper_apq =
        static_cast<double>(row.answers) / static_cast<double>(row.questions);
    table.AddRow({PlatformName(row.platform),
                  std::to_string(dataset.db.NumTasks()),
                  std::to_string(dataset.db.NumWorkers()),
                  std::to_string(dataset.db.NumAssignments()),
                  std::to_string(row.questions), std::to_string(row.users),
                  std::to_string(row.answers),
                  TableReporter::Cell(ours_apq, 2) + " vs " +
                      TableReporter::Cell(paper_apq, 2)});
  }
  table.Print(std::cout);
  return 0;
}
