// Perf-regression harness: a fixed canonical workload — train on the
// StackOverflow-shaped dataset, fold-in cold vs warm through the engine
// cache, and the selection scan at several pool sizes — emitting a
// schema-versioned flat JSON report (BENCH_regression.json) that a
// checked-in baseline gates with a configurable tolerance.
//
//   regression [--out FILE] [--baseline FILE] [--tolerance X] [--quick 1]
//              [--seed N] [--reps N] [--flightrec-limit-pct X]
//              [--quality-limit-pct X]
//
// The report is a flat single-line-parseable JSON object (every value a
// number or string) so the comparator reuses jsonl::ParseObject instead
// of growing a JSON parser. Exit codes: 0 = within tolerance (or no
// baseline given), 1 = regression detected or baseline mismatch, 2 = bad
// usage. CI runs `--quick 1` against bench/regression_baseline.json with
// a generous tolerance; refresh the baseline by re-running with --out
// pointed at it on a quiet machine.
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "crowdselect/crowdselect.h"
#include "obs/flight_recorder.h"

using namespace crowdselect;

namespace {

constexpr int kSchemaVersion = 1;

struct Flags {
  std::string out = "BENCH_regression.json";
  std::string baseline;
  double tolerance = 0.5;
  bool quick = false;
  uint64_t seed = 0xEDB7;
  int reps = 15;
  double flightrec_limit_pct = 3.0;
  double quality_limit_pct = 3.0;
};

int Usage() {
  std::fprintf(stderr,
               "usage: regression [--out FILE] [--baseline FILE] "
               "[--tolerance X] [--quick 1] [--seed N] [--reps N] "
               "[--flightrec-limit-pct X] [--quality-limit-pct X]\n");
  return 2;
}

double MedianOf(std::vector<double> samples) {
  CS_CHECK(!samples.empty());
  std::sort(samples.begin(), samples.end());
  return samples[samples.size() / 2];
}

/// Median latency (us) of `reps` runs of `fn`.
template <typename Fn>
double MedianMicros(int reps, const Fn& fn) {
  std::vector<double> samples;
  samples.reserve(static_cast<size_t>(reps));
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    samples.push_back(timer.ElapsedMicros());
  }
  return MedianOf(std::move(samples));
}

/// Synthetic scan pool: dense skill matrix + every worker a candidate,
/// mirroring bench/serve_throughput.cc's ScanFixture.
struct ScanPool {
  serve::SelectionEngine engine;
  std::vector<WorkerId> candidates;
  Vector category;

  explicit ScanPool(size_t num_workers, size_t num_categories, Rng* rng)
      : engine(serve::ServeOptions{}) {
    Matrix skills(num_workers, num_categories);
    candidates.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      for (size_t d = 0; d < num_categories; ++d) skills(w, d) = rng->Normal();
      candidates.push_back(static_cast<WorkerId>(w));
    }
    engine.PublishSnapshot(serve::SkillMatrixSnapshot::FromMatrix(skills));
    category = Vector(num_categories);
    for (size_t d = 0; d < num_categories; ++d) category[d] = rng->Normal();
  }
};

Result<jsonl::Object> RunWorkload(const Flags& flags) {
  jsonl::Object report;
  report["schema_version"] = static_cast<double>(kSchemaVersion);
  report["workload"] =
      std::string(flags.quick ? "stack_k6_quick" : "stack_k6_full");

  // Stage 1: batch EM on the StackOverflow-shaped dataset (the smallest
  // of the three platform presets, so the harness stays CI-friendly).
  CS_ASSIGN_OR_RETURN(
      SyntheticDataset dataset,
      GeneratePlatformDataset(Platform::kStackOverflow, flags.seed));
  TdpmOptions options;
  options.num_categories = 6;
  options.max_em_iterations = flags.quick ? 3 : 10;
  options.num_threads = 1;
  TdpmSelector selector(options);
  Timer train_timer;
  CS_RETURN_NOT_OK(selector.Train(dataset.db));
  report["train_s"] = train_timer.ElapsedSeconds();
  std::fprintf(stderr, "train: %.2fs (%d EM iterations)\n",
               train_timer.ElapsedSeconds(), selector.fit().iterations);

  // Stage 2: fold-in cold (distinct tasks, every query pays the CG
  // solve) vs warm (one repeated task, every query after the first is a
  // cache hit) through the trained engine's cache.
  const size_t num_foldin = static_cast<size_t>(flags.reps);
  std::vector<const BagOfWords*> bags;
  for (const TaskRecord& task : dataset.db.tasks()) {
    bags.push_back(&task.bag);
    if (bags.size() >= num_foldin) break;
  }
  CS_CHECK(bags.size() == num_foldin) << "dataset smaller than --reps";
  {
    std::vector<double> cold;
    cold.reserve(num_foldin);
    for (const BagOfWords* bag : bags) {
      Timer timer;
      CS_ASSIGN_OR_RETURN(FoldInResult projected, selector.ProjectTask(*bag));
      (void)projected;
      cold.push_back(timer.ElapsedMicros());
    }
    report["foldin_cold_us"] = MedianOf(std::move(cold));
  }
  report["foldin_warm_us"] = MedianMicros(flags.reps, [&] {
    auto projected = selector.ProjectTask(*bags.front());
    CS_CHECK(projected.ok());
  });
  std::fprintf(stderr, "foldin: cold %.1fus, warm %.1fus (median of %d)\n",
               std::get<double>(report["foldin_cold_us"]),
               std::get<double>(report["foldin_warm_us"]), flags.reps);

  // Stage 3: the selection scan at growing synthetic pool sizes (the
  // dominant serving cost at scale; Eq. 1 over contiguous rows).
  Rng rng(flags.seed);
  const std::vector<size_t> pools =
      flags.quick ? std::vector<size_t>{1000, 10000}
                  : std::vector<size_t>{1000, 10000, 50000};
  for (size_t pool_size : pools) {
    ScanPool pool(pool_size, options.num_categories, &rng);
    const double median_us = MedianMicros(flags.reps, [&] {
      auto ranked =
          pool.engine.RankByCategory(pool.category, 10, pool.candidates);
      CS_CHECK(ranked.ok());
    });
    report["select_us_pool_" + std::to_string(pool_size)] = median_us;
    std::fprintf(stderr, "select: pool %zu -> %.1fus (median of %d)\n",
                 pool_size, median_us, flags.reps);
  }

  // Stage 4: the storage engine — WAL-logged ingest (per-mutation cost of
  // the durable write path) and a full checkpoint of the ingested state.
  {
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("cs_bench_storage_" + std::to_string(flags.seed)))
            .string();
    std::filesystem::remove_all(dir);
    CS_ASSIGN_OR_RETURN(std::unique_ptr<CrowdStoreEngine> engine,
                        CrowdStoreEngine::Open(dir));
    const size_t num_workers = flags.quick ? 200 : 1000;
    const size_t answers_per_worker = 4;
    Timer ingest_timer;
    for (size_t w = 0; w < num_workers; ++w) {
      CS_ASSIGN_OR_RETURN(
          const WorkerId worker,
          engine->AddWorker("bench-worker-" + std::to_string(w), true));
      CS_ASSIGN_OR_RETURN(
          const TaskId task,
          engine->AddTask("bench task " + std::to_string(w) +
                          " storage ingest workload"));
      for (size_t a = 0; a < answers_per_worker; ++a) {
        const TaskId target = static_cast<TaskId>((task + a) % (w + 1));
        CS_RETURN_NOT_OK(engine->Assign(worker, target));
        CS_RETURN_NOT_OK(
            engine->RecordFeedback(worker, target, 1.0 + a * 0.5));
      }
    }
    const size_t mutations =
        num_workers * (2 * answers_per_worker + 2);  // Adds + assigns + scores.
    report["storage_ingest_us_per_mutation"] =
        ingest_timer.ElapsedMicros() / static_cast<double>(mutations);
    report["storage_checkpoint_us"] = MedianMicros(flags.reps, [&] {
      CS_CHECK_OK(engine->Checkpoint());
    });
    std::fprintf(stderr,
                 "storage: ingest %.2fus/mutation (%zu mutations), "
                 "checkpoint %.1fus (median of %d)\n",
                 std::get<double>(report["storage_ingest_us_per_mutation"]),
                 mutations, std::get<double>(report["storage_checkpoint_us"]),
                 flags.reps);
    engine.reset();
    std::filesystem::remove_all(dir);
  }

  // Stage 5: flight-recorder overhead — the same selection scan with the
  // recorder on vs off, interleaved rep by rep so frequency scaling and
  // cache state hit both configurations equally. The recorder is
  // always-on in production; this stage guards the "cheap enough to
  // leave enabled" claim with a hard relative gate (the absolute medians
  // also land in the report for the baseline comparator).
  {
    obs::FlightRecorder& recorder = obs::FlightRecorder::Global();
    const bool was_enabled = recorder.enabled();
    ScanPool pool(10000, options.num_categories, &rng);
    auto run_once = [&] {
      auto ranked =
          pool.engine.RankByCategory(pool.category, 10, pool.candidates);
      CS_CHECK(ranked.ok());
    };
    run_once();  // Warm up: allocate this thread's ring, fault in rows.
    const int reps = std::max(flags.reps, 9);
    std::vector<double> on_us, off_us, delta_us;
    on_us.reserve(static_cast<size_t>(reps));
    off_us.reserve(static_cast<size_t>(reps));
    delta_us.reserve(static_cast<size_t>(reps));
    for (int r = 0; r < reps; ++r) {
      recorder.SetEnabled(false);
      Timer off_timer;
      run_once();
      const double off_sample = off_timer.ElapsedMicros();
      recorder.SetEnabled(true);
      Timer on_timer;
      run_once();
      const double on_sample = on_timer.ElapsedMicros();
      off_us.push_back(off_sample);
      on_us.push_back(on_sample);
      // Gate on paired deltas (like the quality stage below): back-to-
      // back pairs cancel the machine drift that median-vs-median reads
      // as fake overhead on shared runners.
      delta_us.push_back(on_sample - off_sample);
    }
    recorder.SetEnabled(was_enabled);
    const double off = MedianOf(std::move(off_us));
    const double on = MedianOf(std::move(on_us));
    const double delta = MedianOf(std::move(delta_us));
    const double overhead_pct = off > 0.0 ? delta / off * 100.0 : 0.0;
    report["flightrec_off_select_us"] = off;
    report["flightrec_on_select_us"] = on;
    std::fprintf(stderr,
                 "flightrec: select off %.1fus, on %.1fus, paired delta "
                 "%+.2fus -> overhead %+.2f%% (median of %d, limit "
                 "%.1f%%)\n",
                 off, on, delta, overhead_pct, reps,
                 flags.flightrec_limit_pct);
    if (overhead_pct > flags.flightrec_limit_pct) {
      return Status::Internal(
          "flight recorder overhead " + std::to_string(overhead_pct) +
          "% exceeds limit " + std::to_string(flags.flightrec_limit_pct) +
          "%");
    }
  }

  // Stage 6: quality-monitor overhead — the full blue path
  // (CrowdManager::ProcessTask: select + dispatch + feedback) against
  // the WAL-backed storage engine, the production configuration where
  // every assignment and feedback score is a durable write. The gate
  // compares the shadow evaluator's per-call cost (timed in-situ by a
  // wrapper observer, so it sees the real bag sizes, worker population,
  // and metrics registry) against the median end-to-end task cost.
  // Off-vs-on end-to-end subtraction was tried first and abandoned: the
  // observer costs ~1us on a ~60-100us path whose run-to-run jitter on a
  // shared box is +/-10us, and even interleaved paired deltas could not
  // resolve the signal (a null-vs-null control showed 10-20us of
  // pair-position bias alone). Direct timing measures the same quantity
  // with none of that variance; off/on medians are still reported for
  // context. This guards the "cheap enough to watch production" claim
  // with a hard relative gate.
  {
    CS_ASSIGN_OR_RETURN(
        SyntheticDataset quality_data,
        GeneratePlatformDataset(Platform::kStackOverflow, flags.seed + 1));
    const std::string dir =
        (std::filesystem::temp_directory_path() /
         ("cs_bench_quality_" + std::to_string(flags.seed)))
            .string();
    std::filesystem::remove_all(dir);
    CS_ASSIGN_OR_RETURN(std::unique_ptr<CrowdStoreEngine> qengine,
                        CrowdStoreEngine::Open(dir));
    CS_RETURN_NOT_OK(qengine->BulkImport(quality_data.db));
    TdpmOptions qopts;
    qopts.num_categories = 6;
    qopts.max_em_iterations = flags.quick ? 3 : 10;
    qopts.num_threads = 1;
    CrowdManager manager(qengine.get(), std::make_unique<TdpmSelector>(qopts));
    CS_RETURN_NOT_OK(manager.InferCrowdModel());
    serve::QualityMonitor monitor({.model_id = "bench", .window_size = 64});
    // Times each shadow evaluation where it actually runs — inside
    // ProcessTask, against the store-sized worker population — so the
    // numerator is the deployed cost, not a synthetic-best-case micro.
    struct TimingObserver : ResolvedTaskObserver {
      serve::QualityMonitor* inner = nullptr;
      std::vector<double> call_us;
      void OnResolvedTask(
          const BagOfWords& bag, const std::vector<RankedWorker>& selected,
          const std::vector<std::pair<WorkerId, double>>& scored) override {
        Timer t;
        inner->OnResolvedTask(bag, selected, scored);
        call_us.push_back(t.ElapsedMicros());
      }
    };
    TimingObserver timing;
    timing.inner = &monitor;
    auto answer_fn = [](WorkerId, const TaskRecord& task) {
      return "re: " + task.text;
    };
    auto feedback_fn = [&rng](WorkerId, const TaskRecord&,
                              const std::string&) {
      return std::max(0.0, rng.Normal(2.0, 0.5));
    };
    TaskDispatcher dispatcher(qengine.get(), answer_fn, feedback_fn);
    // Distinct task texts (copied — ProcessTask appends to the live
    // table): a production stream is mostly unseen tasks, so each timed
    // call pays the cold fold-in like a real deployment would, and the
    // monitor's fixed per-task cost is weighed against the real
    // denominator instead of an artificially cheap cache-hit loop.
    const int reps = std::max(flags.reps * 3, 45);
    std::vector<std::string> texts;
    for (const TaskRecord& task : quality_data.db.tasks()) {
      texts.push_back(task.text);
      if (texts.size() >= static_cast<size_t>(2 * reps + 1)) break;
    }
    CS_CHECK(texts.size() == static_cast<size_t>(2 * reps + 1))
        << "dataset smaller than the quality stage's text budget";
    size_t next_text = 0;
    auto process_one = [&] {
      auto answers =
          manager.ProcessTask(texts[next_text++], 10, &dispatcher);
      CS_CHECK(answers.ok());
    };
    process_one();  // Warm up: fault in tables, allocate caches.
    std::vector<double> on_us, off_us;
    on_us.reserve(static_cast<size_t>(reps));
    off_us.reserve(static_cast<size_t>(reps));
    auto timed_one = [&](bool with_monitor) {
      manager.set_resolved_observer(with_monitor ? &timing : nullptr);
      Timer t;
      process_one();
      return t.ElapsedMicros();
    };
    for (int r = 0; r < reps; ++r) {
      // Alternate which side runs first within each back-to-back pair:
      // per-task cost creeps up as the store grows, and a fixed order
      // would charge that slope to whichever side always ran second.
      const bool on_first = (r % 2) == 1;
      const double first = timed_one(on_first);
      const double second = timed_one(!on_first);
      off_us.push_back(on_first ? second : first);
      on_us.push_back(on_first ? first : second);
    }
    manager.set_resolved_observer(nullptr);
    qengine.reset();
    std::filesystem::remove_all(dir);
    const double off = MedianOf(std::move(off_us));
    const double on = MedianOf(std::move(on_us));
    CS_CHECK(!timing.call_us.empty());
    const double observer = MedianOf(std::move(timing.call_us));
    // Denominator: the median task cost with the monitor detached — the
    // baseline a deployment compares against when deciding to attach it.
    const double overhead_pct = off > 0.0 ? observer / off * 100.0 : 0.0;
    report["quality_off_process_us"] = off;
    report["quality_on_process_us"] = on;
    report["quality_observer_us"] = observer;
    std::fprintf(stderr,
                 "quality: process_task off %.1fus, on %.1fus, observer "
                 "%.2fus -> overhead %.2f%% (median of %d, limit "
                 "%.1f%%)\n",
                 off, on, observer, overhead_pct, reps,
                 flags.quality_limit_pct);
    if (overhead_pct > flags.quality_limit_pct) {
      return Status::Internal(
          "quality monitor overhead " + std::to_string(overhead_pct) +
          "% exceeds limit " + std::to_string(flags.quality_limit_pct) + "%");
    }
  }

  // Stage 7: registry-model serving on the heterogeneous workload —
  // the router's dispatch+member query, the ensemble's full RRF blend,
  // and the Dawid-Skene lookup path, per query against real candidates.
  // Gates the "routing costs a centroid dot-product, not a second
  // model" claim.
  {
    HeterogeneousConfig hetero;
    hetero.num_types = 3;
    hetero.num_workers = flags.quick ? 60 : 120;
    hetero.num_tasks = flags.quick ? 200 : 400;
    hetero.seed = flags.seed;
    CS_ASSIGN_OR_RETURN(HeterogeneousDataset data,
                        GenerateHeterogeneousDataset(hetero));
    ModelConfig config;
    config.tdpm.num_categories = 6;
    config.tdpm.max_em_iterations = flags.quick ? 3 : 10;
    config.tdpm.num_threads = 1;
    config.tdpm.seed = flags.seed;
    config.router_num_clusters = 3;
    config.ds_num_types = 3;
    const std::vector<WorkerId> candidates = data.dataset.db.OnlineWorkers();
    const BagOfWords& query = data.dataset.db.tasks().front().bag;
    for (const char* id : {"router", "ensemble", "dawid_skene"}) {
      CS_ASSIGN_OR_RETURN(std::unique_ptr<CrowdModel> model,
                          CrowdModelRegistry::Global().Create(id, config));
      CS_RETURN_NOT_OK(model->Train(data.dataset.db));
      const double median_us = MedianMicros(flags.reps, [&] {
        auto ranked = model->SelectTopK(query, 10, candidates);
        CS_CHECK(ranked.ok());
      });
      report[std::string(id) + "_select_us"] = median_us;
      std::fprintf(stderr, "model: %s select -> %.1fus (median of %d)\n", id,
                   median_us, flags.reps);
    }
  }

  // Stage 8: the blocked ScoreKernel scan at 1M workers — scalar
  // reference vs the dispatched SIMD kernel vs the int8 phase-1 +
  // full-precision-rescore path, all three engines sharing one
  // snapshot. Gates the "SIMD dispatch actually buys throughput on the
  // dense scan" claim in-harness (skipped when dispatch resolves to
  // scalar, e.g. under CROWDSELECT_FORCE_SCALAR or on a non-SIMD box),
  // and asserts the determinism contract at scale: all three paths must
  // return the identical ranking.
  {
    constexpr size_t kPoolSize = 1000000;
    const size_t dims = options.num_categories;
    Matrix skills(kPoolSize, dims);
    std::vector<WorkerId> candidates;
    candidates.reserve(kPoolSize);
    for (size_t w = 0; w < kPoolSize; ++w) {
      for (size_t d = 0; d < dims; ++d) skills(w, d) = rng.Normal();
      candidates.push_back(static_cast<WorkerId>(w));
    }
    auto snapshot = serve::SkillMatrixSnapshot::FromMatrix(std::move(skills));
    Vector category(dims);
    for (size_t d = 0; d < dims; ++d) category[d] = rng.Normal();

    serve::ServeOptions scalar_options;
    scalar_options.force_scalar_kernel = true;
    serve::SelectionEngine scalar_engine(scalar_options);
    serve::SelectionEngine simd_engine{serve::ServeOptions{}};
    serve::ServeOptions int8_options;
    int8_options.quant = serve::ScanQuant::kInt8;
    serve::SelectionEngine int8_engine(int8_options);
    scalar_engine.PublishSnapshot(snapshot);
    simd_engine.PublishSnapshot(snapshot);
    int8_engine.PublishSnapshot(snapshot);

    std::vector<RankedWorker> rankings[3];
    const char* stage_names[3] = {"scalar", "simd", "int8"};
    serve::SelectionEngine* engines[3] = {&scalar_engine, &simd_engine,
                                          &int8_engine};
    double medians[3];
    for (int e = 0; e < 3; ++e) {
      medians[e] = MedianMicros(flags.reps, [&] {
        auto ranked = engines[e]->RankByCategory(category, 8, candidates);
        CS_CHECK(ranked.ok());
        rankings[e] = std::move(*ranked);
      });
      report[std::string("select_1m_") + stage_names[e] + "_us"] = medians[e];
      std::fprintf(stderr,
                   "kernel: 1M pool %s (%s) -> %.1fus (median of %d)\n",
                   stage_names[e], engines[e]->kernel().id(), medians[e],
                   flags.reps);
    }
    for (int e = 1; e < 3; ++e) {
      CS_CHECK(rankings[e].size() == rankings[0].size());
      for (size_t i = 0; i < rankings[0].size(); ++i) {
        CS_CHECK(rankings[e][i].worker == rankings[0][i].worker &&
                 rankings[e][i].score == rankings[0][i].score)
            << stage_names[e] << " ranking diverged from scalar at rank "
            << i;
      }
    }
    if (std::strcmp(simd_engine.kernel().id(), "scalar") != 0) {
      // The dense fp64 scan is memory-bandwidth-bound at this size, so
      // the SIMD headroom over an auto-vectorized scalar loop is capped;
      // the margin catches "dispatch silently stopped mattering"
      // (ratio -> 1.0), not peak-FLOPS claims.
      constexpr double kSimdSpeedupGate = 0.92;
      if (medians[1] > medians[0] * kSimdSpeedupGate) {
        return Status::Internal(
            "SIMD 1M scan " + std::to_string(medians[1]) +
            "us did not beat scalar " + std::to_string(medians[0]) +
            "us by the gated margin (<= " +
            std::to_string(kSimdSpeedupGate) + "x)");
      }
    } else {
      std::fprintf(stderr,
                   "kernel: dispatch resolved to scalar; SIMD speedup gate "
                   "skipped\n");
    }
  }
  return report;
}

/// Gates `report` against `baseline_path`: every numeric metric present
/// in both must satisfy measured <= baseline * (1 + tolerance). Metadata
/// keys gate exact equality instead (a schema or workload mismatch means
/// the comparison is meaningless).
Result<bool> CompareAgainstBaseline(const jsonl::Object& report,
                                    const std::string& baseline_path,
                                    double tolerance) {
  std::ifstream in(baseline_path);
  if (!in.is_open()) {
    return Status::IOError("cannot open baseline " + baseline_path);
  }
  std::string line;
  std::getline(in, line);
  CS_ASSIGN_OR_RETURN(jsonl::Object baseline, jsonl::ParseObject(line));
  bool ok = true;
  for (const auto& [key, base_value] : baseline) {
    auto it = report.find(key);
    if (it == report.end()) {
      std::fprintf(stderr, "FAIL %-22s in baseline but not in report\n",
                   key.c_str());
      ok = false;
      continue;
    }
    if (key == "schema_version" || key == "workload") {
      if (it->second != base_value) {
        std::fprintf(stderr, "FAIL %-22s metadata mismatch with baseline\n",
                     key.c_str());
        ok = false;
      }
      continue;
    }
    const double base = std::get<double>(base_value);
    const double measured = std::get<double>(it->second);
    const double limit = base * (1.0 + tolerance);
    const bool pass = measured <= limit;
    std::fprintf(stderr, "%s %-22s measured %10.2f  baseline %10.2f  "
                 "limit %10.2f\n",
                 pass ? "PASS" : "FAIL", key.c_str(), measured, base, limit);
    if (!pass) ok = false;
  }
  return ok;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i + 1 < argc; i += 2) {
    const std::string key = argv[i];
    const char* value = argv[i + 1];
    if (key == "--out") {
      flags.out = value;
    } else if (key == "--baseline") {
      flags.baseline = value;
    } else if (key == "--tolerance") {
      flags.tolerance = std::atof(value);
    } else if (key == "--quick") {
      flags.quick = std::atol(value) != 0;
    } else if (key == "--seed") {
      flags.seed = static_cast<uint64_t>(std::atoll(value));
    } else if (key == "--reps") {
      flags.reps = static_cast<int>(std::atol(value));
    } else if (key == "--flightrec-limit-pct") {
      flags.flightrec_limit_pct = std::atof(value);
    } else if (key == "--quality-limit-pct") {
      flags.quality_limit_pct = std::atof(value);
    } else {
      return Usage();
    }
  }
  if (flags.reps < 1 || flags.tolerance < 0.0) return Usage();

  auto report = RunWorkload(flags);
  if (!report.ok()) {
    std::fprintf(stderr, "error: %s\n", report.status().ToString().c_str());
    return 1;
  }
  {
    std::ofstream out(flags.out, std::ios::trunc);
    out << jsonl::WriteObject(*report) << "\n";
    if (!out.good()) {
      std::fprintf(stderr, "error: cannot write %s\n", flags.out.c_str());
      return 1;
    }
  }
  std::fprintf(stderr, "report written to %s\n", flags.out.c_str());

  if (flags.baseline.empty()) return 0;
  auto ok = CompareAgainstBaseline(*report, flags.baseline, flags.tolerance);
  if (!ok.ok()) {
    std::fprintf(stderr, "error: %s\n", ok.status().ToString().c_str());
    return 1;
  }
  if (!*ok) {
    std::fprintf(stderr,
                 "perf regression detected (tolerance %.0f%%) — see FAIL "
                 "lines above\n",
                 flags.tolerance * 100.0);
    return 1;
  }
  std::fprintf(stderr, "within tolerance of %s\n", flags.baseline.c_str());
  return 0;
}
