// Serving-path throughput: queries/sec of the selection scan as a
// function of the worker-pool size and thread count, plus the fold-in
// cache's effect on repeated-task latency. These back the serving
// engine's two claims: the blocked parallel scan beats the pre-refactor
// scalar loop at large pools, and a cache hit skips the CG subproblem.
#include <benchmark/benchmark.h>

#include <map>
#include <memory>
#include <vector>

#include "crowdselect/crowdselect.h"

using namespace crowdselect;

namespace {

constexpr size_t kCategories = 16;
constexpr size_t kVocab = 2000;
constexpr size_t kTopK = 10;

// Synthetic serving state shared across pool sizes: a dense skill matrix
// (the snapshot) plus the same posteriors as per-worker Vectors — the
// pre-refactor representation the scalar baseline scans.
struct ScanFixture {
  std::shared_ptr<const serve::SkillMatrixSnapshot> snapshot;
  std::vector<Vector> worker_skills;
  std::vector<WorkerId> candidates;
  Vector category;

  static ScanFixture* Get(size_t num_workers) {
    static std::map<size_t, ScanFixture*> cache;
    auto it = cache.find(num_workers);
    if (it != cache.end()) return it->second;
    Rng rng(77);
    // cslint: allow(naked-new): cached fixture, leaked for the process.
    auto* fixture = new ScanFixture;
    Matrix skills(num_workers, kCategories);
    fixture->worker_skills.reserve(num_workers);
    fixture->candidates.reserve(num_workers);
    for (size_t w = 0; w < num_workers; ++w) {
      Vector row(kCategories);
      for (size_t d = 0; d < kCategories; ++d) {
        row[d] = rng.Normal();
        skills(w, d) = row[d];
      }
      fixture->worker_skills.push_back(std::move(row));
      fixture->candidates.push_back(static_cast<WorkerId>(w));
    }
    fixture->snapshot = serve::SkillMatrixSnapshot::FromMatrix(skills);
    fixture->category = Vector(kCategories);
    for (size_t d = 0; d < kCategories; ++d) {
      fixture->category[d] = rng.Normal();
    }
    cache[num_workers] = fixture;
    return fixture;
  }
};

// Pre-refactor serving scan: one thread, per-worker Vector::Dot into a
// single TopKAccumulator (what TdpmSelector::SelectTopK used to run).
void BM_ScanScalar(benchmark::State& state) {
  ScanFixture* fixture = ScanFixture::Get(static_cast<size_t>(state.range(0)));
  for (auto _ : state) {
    TopKAccumulator acc(kTopK);
    for (WorkerId w : fixture->candidates) {
      acc.Offer(w, fixture->worker_skills[w].Dot(fixture->category));
    }
    benchmark::DoNotOptimize(acc.Take());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["workers"] = static_cast<double>(fixture->candidates.size());
}
BENCHMARK(BM_ScanScalar)->Arg(10000)->Arg(100000)
    ->Unit(benchmark::kMicrosecond);

// Engine scan: blocked parallel top-k over the contiguous snapshot.
// range(0) = pool size, range(1) = threads.
void BM_ScanEngine(benchmark::State& state) {
  ScanFixture* fixture = ScanFixture::Get(static_cast<size_t>(state.range(0)));
  serve::ServeOptions options;
  options.num_threads = static_cast<size_t>(state.range(1));
  serve::SelectionEngine engine(options);
  engine.PublishSnapshot(fixture->snapshot);
  for (auto _ : state) {
    auto ranked =
        engine.RankByCategory(fixture->category, kTopK, fixture->candidates);
    benchmark::DoNotOptimize(ranked.value());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["workers"] = static_cast<double>(fixture->candidates.size());
  state.counters["threads"] = static_cast<double>(state.range(1));
}
BENCHMARK(BM_ScanEngine)
    ->ArgsProduct({{10000, 100000}, {1, 2, 4, 8}})
    ->Unit(benchmark::kMicrosecond);

// Fold-in fixture: a synthetic model (uniform language model, identity
// priors) is enough — the CG subproblem's cost does not depend on where
// beta came from.
struct FoldFixture {
  TaskFolder folder;
  BagOfWords task;

  static FoldFixture* Get() {
    static FoldFixture* fixture = [] {
      TdpmOptions options;
      options.num_categories = kCategories;
      auto folder =
          TaskFolder::Create(TdpmModelParams::Init(kCategories, kVocab),
                             options);
      CS_CHECK(folder.ok());
      // cslint: allow(naked-new): cached fixture, leaked for the process.
      auto* f = new FoldFixture{std::move(*folder), BagOfWords()};
      Rng rng(5);
      for (int t = 0; t < 24; ++t) {
        f->task.Add(static_cast<TermId>(rng.UniformInt(kVocab)),
                    1 + static_cast<uint32_t>(rng.UniformInt(4)));
      }
      return f;
    }();
    return fixture;
  }
};

// Per-query fold-in latency with the cache disabled (every query pays the
// CG solve) vs enabled (every query after the first is a lookup). The
// task stream repeats one task — the cache's best case, and exactly the
// redispatch pattern the cache exists for.
void BM_FoldInRepeated(benchmark::State& state) {
  FoldFixture* fixture = FoldFixture::Get();
  serve::ServeOptions options;
  options.foldin_cache_capacity = static_cast<size_t>(state.range(0));
  serve::SelectionEngine engine(options);
  engine.SetFolder(fixture->folder);
  for (auto _ : state) {
    auto projected = engine.Project(fixture->task);
    benchmark::DoNotOptimize(projected.value());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["cache"] = static_cast<double>(state.range(0));
}
BENCHMARK(BM_FoldInRepeated)->Arg(0)->Arg(256)
    ->Unit(benchmark::kMicrosecond);

}  // namespace

BENCHMARK_MAIN();
