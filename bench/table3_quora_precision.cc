// Reproduces paper Table 3: precision (ACCU) of the crowd-selection
// algorithms, per worker group and number of latent categories K.
#include "common/table_runner.h"

int main() {
  return crowdselect::bench::RunPrecisionTable(
      crowdselect::Platform::kQuora, "Table 3");
}
