// Reproduces paper Figure 7: task coverage and group size of the crowd in
// the kStackOverflow dataset as the participation threshold varies.
#include "common/table_runner.h"

int main() {
  return crowdselect::bench::RunCrowdStatsFigure(
      crowdselect::Platform::kStackOverflow, "Figure 7");
}
