// Ablation A1 (DESIGN.md): how much of TDPM's quality comes from the
// feedback scores? Trains TDPM twice per platform — once with real
// feedback, once with every score replaced by a constant (content-only
// inference, the alternative the paper argues against in section 1) — and
// compares precision/recall on the same split.
#include <cstdio>
#include <iostream>

#include "common/bench_util.h"

using namespace crowdselect;
using namespace crowdselect::bench;

namespace {

AlgorithmResult EvaluateTdpm(const EvalSplit& split, bool use_feedback) {
  TdpmOptions options;
  options.num_categories = kDefaultCategories;
  options.seed = 97;
  options.max_em_iterations = 30;
  options.num_threads = 0;
  options.use_feedback = use_feedback;
  std::vector<SelectorFactory> factory = {
      [&options] { return std::make_unique<TdpmSelector>(options); }};
  auto results = RunExperiment(split, factory);
  CS_CHECK(results.ok()) << results.status().ToString();
  return (*results)[0];
}

}  // namespace

int main() {
  TableReporter table(
      "Ablation A1: feedback-score inference vs content-only inference "
      "(TDPM, K=" + std::to_string(kDefaultCategories) + ")");
  table.SetHeader({"Dataset", "ACCU (feedback)", "ACCU (content-only)",
                   "Top1 (feedback)", "Top1 (content-only)",
                   "Top2 (feedback)", "Top2 (content-only)"});
  for (Platform platform : {Platform::kQuora, Platform::kYahooAnswer,
                            Platform::kStackOverflow}) {
    const SyntheticDataset& dataset = GetDataset(platform);
    PrintScaleNote(dataset);
    const WorkerGroup group = MakeGroup(dataset.db, 1, GroupPrefix(platform));
    SplitOptions split_options;
    split_options.num_test_tasks = NumTestQuestions(platform);
    split_options.min_candidates = 3;
    auto split = MakeSplit(dataset, group, split_options);
    CS_CHECK(split.ok()) << split.status().ToString();
    const AlgorithmResult with = EvaluateTdpm(*split, true);
    const AlgorithmResult without = EvaluateTdpm(*split, false);
    table.AddRow({PlatformName(platform), TableReporter::Cell(with.mean_accu),
                  TableReporter::Cell(without.mean_accu),
                  TableReporter::Cell(with.top1),
                  TableReporter::Cell(without.top1),
                  TableReporter::Cell(with.top2),
                  TableReporter::Cell(without.top2)});
  }
  table.Print(std::cout);
  return 0;
}
