// Reproduces paper Figure 6: per-question Top1/Top2 crowd-selection
// running time of each algorithm across worker groups.
#include "common/runtime_figure.h"

int main(int argc, char** argv) {
  return crowdselect::bench::RunRuntimeFigure(
      crowdselect::Platform::kYahooAnswer, "Figure 6", argc, argv);
}
